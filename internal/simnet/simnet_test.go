package simnet

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/flashroute/flashroute/internal/simclock"
)

// TestImpairStateLossRate: the independent-loss draw must track LossProb
// closely over a long stream (binomial stddev ≈ 0.13% at n=100k).
func TestImpairStateLossRate(t *testing.T) {
	im := &Impairments{LossProb: 0.20}
	st := NewImpairState(42)
	const n = 100_000
	lost := 0
	for i := 0; i < n; i++ {
		if st.step(im) {
			lost++
		}
	}
	rate := float64(lost) / n
	if rate < 0.19 || rate > 0.21 {
		t.Errorf("loss rate %.4f, want ≈ 0.20", rate)
	}
}

// TestImpairStateGEBursts: with loss exactly in the bad state, the chain's
// stationary loss fraction must be p/(p+r) and the mean run of consecutive
// losses ≈ 1/r — the burstiness independent loss cannot produce.
func TestImpairStateGEBursts(t *testing.T) {
	im := &Impairments{GEGoodToBad: 0.02, GEBadToGood: 0.25, GEBadLoss: 1}
	st := NewImpairState(7)
	const n = 200_000
	lost, bursts, run := 0, 0, 0
	var runs []int
	for i := 0; i < n; i++ {
		if st.step(im) {
			lost++
			run++
		} else if run > 0 {
			bursts++
			runs = append(runs, run)
			run = 0
		}
	}
	frac := float64(lost) / n
	want := 0.02 / (0.02 + 0.25) // ≈ 0.074
	if frac < want-0.02 || frac > want+0.02 {
		t.Errorf("stationary loss fraction %.4f, want ≈ %.4f", frac, want)
	}
	var sum int
	for _, r := range runs {
		sum += r
	}
	mean := float64(sum) / float64(bursts)
	if mean < 3.0 || mean > 5.0 {
		t.Errorf("mean burst length %.2f, want ≈ 4 (1/GEBadToGood)", mean)
	}
}

// TestImpairStateDeterminism: equal seeds produce identical fate streams.
func TestImpairStateDeterminism(t *testing.T) {
	im := &Impairments{
		LossProb: 0.1, GEGoodToBad: 0.01, GEBadToGood: 0.2, GEBadLoss: 0.5,
		DupProb: 0.05, ReorderProb: 0.1, ReorderWindow: 10 * time.Millisecond,
		ExtraJitter: 5 * time.Millisecond,
	}
	a, b := NewImpairState(99), NewImpairState(99)
	for i := 0; i < 10_000; i++ {
		if i%2 == 0 {
			if ca, cb := a.ProbeFate(im), b.ProbeFate(im); ca != cb {
				t.Fatalf("probe fate diverged at %d: %d vs %d", i, ca, cb)
			}
			continue
		}
		ca, da, ra := a.ResponseFate(im)
		cb, db, rb := b.ResponseFate(im)
		if ca != cb || da != db || ra != rb {
			t.Fatalf("response fate diverged at %d: (%d,%v,%d) vs (%d,%v,%d)",
				i, ca, da, ra, cb, db, rb)
		}
	}
}

// TestInboxHeapOrdering: the hand-rolled value-typed inbox heap must pop
// in (DeliverAt, Seq) order for arbitrary push sequences — the property
// the replaced container/heap implementations guaranteed.
func TestInboxHeapOrdering(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	check := func(keys []uint16) bool {
		in := NewInbox[int](clock, clock.Now())
		for i, k := range keys {
			in.push(Item[int]{DeliverAt: time.Duration(k % 97), Seq: uint64(i)})
		}
		var prev Item[int]
		for i := 0; len(in.heap) > 0; i++ {
			r := in.pop()
			if i > 0 && (r.DeliverAt < prev.DeliverAt ||
				(r.DeliverAt == prev.DeliverAt && r.Seq < prev.Seq)) {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestInboxCloseSemantics: scheduling after Close fails, already
// scheduled items drain, then Next reports done.
func TestInboxCloseSemantics(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	clock.AddActor()
	defer clock.DoneActor()
	in := NewInbox[string](clock, clock.Now())
	if !in.Schedule("a", 1, 0, [2]time.Duration{}) {
		t.Fatal("schedule on open inbox failed")
	}
	in.Close()
	if in.Schedule("b", 1, 0, [2]time.Duration{}) {
		t.Fatal("schedule on closed inbox succeeded")
	}
	if p, ok := in.Next(); !ok || p != "a" {
		t.Fatalf("drain got (%q, %v), want (a, true)", p, ok)
	}
	if _, ok := in.Next(); ok {
		t.Fatal("Next after drain should report done")
	}
}

// TestBucketsFixedWindow: per-address budget is enforced within a second
// and refreshed at the next window, independently per address.
func TestBucketsFixedWindow(t *testing.T) {
	bk := NewBuckets[uint32](func(a uint32) uint32 { return a })
	allowed := 0
	for i := 0; i < 12; i++ {
		if bk.Allow(42, 5, 0) {
			allowed++
		}
	}
	if allowed != 5 {
		t.Errorf("allowed %d of 12 in one window, want 5", allowed)
	}
	if !bk.Allow(7, 5, 0) {
		t.Error("distinct address throttled by another's budget")
	}
	if !bk.Allow(42, 5, time.Second) {
		t.Error("budget not refreshed at the next window")
	}
	for i := 0; i < 20; i++ {
		if !bk.Allow(42, 0, 0) {
			t.Fatal("limit<=0 must disable throttling")
		}
	}
}
