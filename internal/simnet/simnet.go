// Package simnet is the address-family-independent substrate shared by
// the IPv4 (netsim) and IPv6 (netsim6) network simulators: the
// deterministic impairment model, the value-typed delivery inbox, the
// sharded ICMP rate-limit buckets, and the delivery-side statistics.
//
// Everything here is generic over the payload or address representation;
// the family packages supply wire formats, topologies and RTT models and
// compose these pieces into their Conn types. Keeping the substrate in
// one place means an impairment or scheduling fix lands once and both
// families inherit it — the same argument the engine makes for a single
// generic scanner core.
package simnet

import "sync/atomic"

// DeliveryStats counts delivery-side events common to both simulator
// families. Family simulators embed it in their Stats structs so the
// counters promote to the familiar field names. All fields are updated
// atomically and may be read during a scan.
type DeliveryStats struct {
	Responses atomic.Uint64 // responses delivered to the inbox

	// Impairment-layer counters (all zero on a perfect network).
	ProbesLost  atomic.Uint64 // outbound probes dropped before any hop
	RepliesLost atomic.Uint64 // responses dropped after the responder sent them
	Duplicates  atomic.Uint64 // packets (either direction) delivered twice
	Reordered   atomic.Uint64 // response copies delayed by the reordering window

	// Fault-window counters (all zero without configured Faults).
	WriteFaults  atomic.Uint64 // writes rejected with a transient error
	FaultDropped atomic.Uint64 // responses lost to a connection flap window
	FaultStalled atomic.Uint64 // responses delayed by a read-stall window
}
