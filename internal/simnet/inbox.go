package simnet

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/flashroute/flashroute/internal/simclock"
)

// Item is a scheduled payload in an Inbox: the payload plus its delivery
// time and a per-inbox sequence number breaking delivery-time ties
// deterministically.
type Item[P any] struct {
	DeliverAt time.Duration // since the inbox epoch
	Seq       uint64
	Payload   P
}

// Inbox is the receive side of a simulated connection: a value-typed
// binary min-heap of scheduled payloads ordered by (DeliverAt, Seq),
// drained in virtual-time order by a parked reader. It deliberately does
// not go through container/heap: the interface-based API boxes every
// pushed and popped element into an `any` allocation, which on the probe
// write path would mean one heap allocation per response in flight. The
// inlined sift operations below keep the steady-state write/read path
// allocation-free (the backing array grows amortized and is then reused).
type Inbox[P any] struct {
	clock  simclock.Waiter
	epoch  time.Time
	parker *simclock.Parker

	mu     sync.Mutex
	heap   []Item[P]
	seq    uint64
	closed bool

	// readers holds the parkers of all Reader handles (multi-reader mode).
	// It is an atomic copy-on-write snapshot so the write path can notify
	// readers without re-taking mu; nil while no Reader exists keeps the
	// classic single-reader path free of any extra cost.
	readers atomic.Pointer[[]*simclock.Parker]
}

// NewInbox creates an inbox on the clock. deliverAt values are relative
// to epoch.
func NewInbox[P any](clock simclock.Waiter, epoch time.Time) *Inbox[P] {
	return &Inbox[P]{clock: clock, epoch: epoch, parker: clock.NewParker()}
}

// Schedule pushes copies instances of payload, copy i deliverable at
// base+extra[i], and wakes the reader. It reports false — scheduling
// nothing — once the inbox is closed.
func (in *Inbox[P]) Schedule(payload P, copies int, base time.Duration, extra [2]time.Duration) bool {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return false
	}
	for i := 0; i < copies; i++ {
		in.push(Item[P]{DeliverAt: base + extra[i], Seq: in.seq, Payload: payload})
		in.seq++
	}
	in.mu.Unlock()
	in.wakeAll()
	return true
}

// Pending is one staged response awaiting batch scheduling: the payload
// with its impairment-resolved copy count and delivery offsets. Staging
// (StageResponse) and committing (ScheduleAllResponses) split the work of
// ScheduleResponse so a whole write batch pays for the inbox lock and the
// reader wakeup once instead of once per response.
type Pending[P any] struct {
	Payload P
	Copies  int
	Base    time.Duration
	Extra   [2]time.Duration
}

// ScheduleAll pushes a staged batch under one lock acquisition and wakes
// the readers once. Sequence numbers are assigned in batch order, exactly
// as the equivalent sequence of Schedule calls would have. It reports
// false — scheduling nothing — once the inbox is closed.
func (in *Inbox[P]) ScheduleAll(batch []Pending[P]) bool {
	if len(batch) == 0 {
		return true
	}
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return false
	}
	for i := range batch {
		p := &batch[i]
		for c := 0; c < p.Copies; c++ {
			in.push(Item[P]{DeliverAt: p.Base + p.Extra[c], Seq: in.seq, Payload: p.Payload})
			in.seq++
		}
	}
	in.mu.Unlock()
	in.wakeAll()
	return true
}

// NextBatch blocks like Next until the earliest scheduled item is
// deliverable, then greedily pops every already-deliverable item (heap
// order, same as consecutive Next calls at one instant) up to len(out).
// It returns the count filled, reporting ok=false once the inbox is
// closed and drained.
func (in *Inbox[P]) NextBatch(out []P) (int, bool) {
	for {
		in.mu.Lock()
		now := in.clock.Now().Sub(in.epoch)
		k := 0
		for k < len(out) && len(in.heap) > 0 && in.heap[0].DeliverAt <= now {
			out[k] = in.pop().Payload
			k++
		}
		if k > 0 {
			in.mu.Unlock()
			return k, true
		}
		if in.closed && len(in.heap) == 0 {
			in.mu.Unlock()
			return 0, false
		}
		var deadline time.Time
		if len(in.heap) > 0 {
			deadline = in.epoch.Add(in.heap[0].DeliverAt)
		}
		in.mu.Unlock()
		in.clock.Park(in.parker, deadline)
	}
}

// wakeAll unparks the base reader and every Reader handle. An Unpark on a
// parker nobody is blocked on is retained for its next park, so spurious
// wakeups are the only cost of over-notifying.
func (in *Inbox[P]) wakeAll() {
	in.clock.Unpark(in.parker)
	if rs := in.readers.Load(); rs != nil {
		for _, p := range *rs {
			in.clock.Unpark(p)
		}
	}
}

// Next blocks until the earliest scheduled item is deliverable at the
// current clock time and returns its payload. It reports false once the
// inbox is closed and drained.
func (in *Inbox[P]) Next() (P, bool) {
	for {
		in.mu.Lock()
		now := in.clock.Now().Sub(in.epoch)
		if len(in.heap) > 0 && in.heap[0].DeliverAt <= now {
			it := in.pop()
			in.mu.Unlock()
			return it.Payload, true
		}
		if in.closed && len(in.heap) == 0 {
			in.mu.Unlock()
			var zero P
			return zero, false
		}
		var deadline time.Time
		if len(in.heap) > 0 {
			deadline = in.epoch.Add(in.heap[0].DeliverAt)
		}
		in.mu.Unlock()
		in.clock.Park(in.parker, deadline)
	}
}

// Close stops further scheduling; already scheduled items remain
// drainable, after which Next reports false.
func (in *Inbox[P]) Close() {
	in.mu.Lock()
	in.closed = true
	in.mu.Unlock()
	in.wakeAll()
}

// Reader is a per-receiver handle onto an Inbox for concurrent draining: R
// receive workers each hold their own Reader, so each blocks on its own
// Parker (a Parker must never be shared by two concurrently parked
// actors). Pops are serialized by the inbox mutex; delivery order across
// readers follows the (DeliverAt, Seq) heap order of the pops themselves.
type Reader[P any] struct {
	in     *Inbox[P]
	parker *simclock.Parker
}

// NewReader registers and returns a new read handle. Readers are
// registered for the life of the inbox; create them before (or while)
// draining, not per read.
func (in *Inbox[P]) NewReader() *Reader[P] {
	r := &Reader[P]{in: in, parker: in.clock.NewParker()}
	in.mu.Lock()
	var rs []*simclock.Parker
	if old := in.readers.Load(); old != nil {
		rs = append(rs, *old...)
	}
	rs = append(rs, r.parker)
	in.readers.Store(&rs)
	in.mu.Unlock()
	return r
}

// Next returns the next deliverable payload. eof reports the inbox closed
// and drained (terminal). When an explicit Wake arrives while the reader
// is parked and nothing is deliverable yet, Next returns ok=false,
// eof=false — an interrupted wait, letting the caller service out-of-band
// work (e.g. replies dispatched to it by a sibling worker) before reading
// again.
func (r *Reader[P]) Next() (payload P, ok, eof bool) {
	in := r.in
	for {
		in.mu.Lock()
		now := in.clock.Now().Sub(in.epoch)
		if len(in.heap) > 0 && in.heap[0].DeliverAt <= now {
			it := in.pop()
			in.mu.Unlock()
			return it.Payload, true, false
		}
		if in.closed && len(in.heap) == 0 {
			in.mu.Unlock()
			var zero P
			return zero, false, true
		}
		var deadline time.Time
		if len(in.heap) > 0 {
			deadline = in.epoch.Add(in.heap[0].DeliverAt)
		}
		in.mu.Unlock()
		if in.clock.Park(r.parker, deadline) {
			var zero P
			return zero, false, false // interrupted by an explicit wake
		}
	}
}

// NextBatch is the batch form of Next: it fills out with every
// already-deliverable payload (up to len(out)) once at least one is
// deliverable. n == 0 with eof false is an interrupted wait (explicit
// Wake); eof reports the inbox closed and drained.
func (r *Reader[P]) NextBatch(out []P) (n int, eof bool) {
	in := r.in
	for {
		in.mu.Lock()
		now := in.clock.Now().Sub(in.epoch)
		k := 0
		for k < len(out) && len(in.heap) > 0 && in.heap[0].DeliverAt <= now {
			out[k] = in.pop().Payload
			k++
		}
		if k > 0 {
			in.mu.Unlock()
			return k, false
		}
		if in.closed && len(in.heap) == 0 {
			in.mu.Unlock()
			return 0, true
		}
		var deadline time.Time
		if len(in.heap) > 0 {
			deadline = in.epoch.Add(in.heap[0].DeliverAt)
		}
		in.mu.Unlock()
		if in.clock.Park(r.parker, deadline) {
			return 0, false // interrupted by an explicit wake
		}
	}
}

// Wake interrupts this reader's blocked (or next) Next call.
func (r *Reader[P]) Wake() {
	r.in.clock.Unpark(r.parker)
}

// Len returns the number of scheduled, not yet read items.
func (in *Inbox[P]) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.heap)
}

func (in *Inbox[P]) less(h []Item[P], i, j int) bool {
	if h[i].DeliverAt != h[j].DeliverAt {
		return h[i].DeliverAt < h[j].DeliverAt
	}
	return h[i].Seq < h[j].Seq
}

// push inserts it, sifting up to its heap position. Caller holds in.mu.
func (in *Inbox[P]) push(it Item[P]) {
	q := append(in.heap, it)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !in.less(q, i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	in.heap = q
}

// pop removes and returns the earliest-delivery item. Caller holds in.mu.
func (in *Inbox[P]) pop() Item[P] {
	q := in.heap
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= len(q) {
			break
		}
		c := l
		if r := l + 1; r < len(q) && in.less(q, r, l) {
			c = r
		}
		if !in.less(q, c, i) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	in.heap = q
	return top
}

// ScheduleResponse applies inbound impairments (st nil means none) to one
// emitted response and schedules the surviving copies into the inbox,
// accounting each outcome in stats. It reports false only when the inbox
// is closed; an impairment-dropped response is a successful (true)
// delivery of nothing.
func ScheduleResponse[P any](in *Inbox[P], st *ImpairState, im *Impairments, stats *DeliveryStats, payload P, base time.Duration) bool {
	copies := 1
	var extra [2]time.Duration
	if st != nil {
		var reordered int
		copies, extra, reordered = st.ResponseFate(im)
		if copies == 0 {
			stats.RepliesLost.Add(1)
			return true
		}
		if copies == 2 {
			stats.Duplicates.Add(1)
		}
		if reordered > 0 {
			stats.Reordered.Add(uint64(reordered))
		}
	}
	if !in.Schedule(payload, copies, base, extra) {
		return false
	}
	stats.Responses.Add(uint64(copies))
	return true
}

// StageResponse is the staging half of ScheduleResponse for batched
// writes: it applies inbound impairments to one emitted response —
// consuming exactly the RNG draws ScheduleResponse would, in the same
// order — and returns the surviving Pending for a later ScheduleAll
// commit. ok=false means the response was lost (accounted, nothing to
// stage).
func StageResponse[P any](st *ImpairState, im *Impairments, stats *DeliveryStats, payload P, base time.Duration) (Pending[P], bool) {
	p := Pending[P]{Payload: payload, Copies: 1, Base: base}
	if st != nil {
		var reordered int
		p.Copies, p.Extra, reordered = st.ResponseFate(im)
		if p.Copies == 0 {
			stats.RepliesLost.Add(1)
			return Pending[P]{}, false
		}
		if p.Copies == 2 {
			stats.Duplicates.Add(1)
		}
		if reordered > 0 {
			stats.Reordered.Add(uint64(reordered))
		}
	}
	return p, true
}

// ScheduleAllResponses commits a staged batch: one inbox lock, one reader
// wakeup, and the same Responses accounting the per-response path does.
// It reports false — scheduling nothing — once the inbox is closed.
func ScheduleAllResponses[P any](in *Inbox[P], stats *DeliveryStats, batch []Pending[P]) bool {
	if len(batch) == 0 {
		return true
	}
	if !in.ScheduleAll(batch) {
		return false
	}
	total := 0
	for i := range batch {
		total += batch[i].Copies
	}
	stats.Responses.Add(uint64(total))
	return true
}
