package flashroute

import (
	"context"
	"time"

	"github.com/flashroute/flashroute/internal/core6"
	"github.com/flashroute/flashroute/internal/netsim6"
	"github.com/flashroute/flashroute/internal/probe6"
	"github.com/flashroute/flashroute/internal/simclock"
)

// Addr6 is an IPv6 address (value type, usable as a map key).
type Addr6 = probe6.Addr

// Sim6Config parameterizes a simulated IPv6 Internet (the §5.4 extension:
// sparse allocated prefixes with candidate target lists).
type Sim6Config struct {
	// Prefixes is the number of allocated /48s; TargetsPerPrefix the
	// candidate addresses per prefix.
	Prefixes         int
	TargetsPerPrefix int
	Seed             int64
	RealTime         bool
	// Lockstep removes the timing-dependent topology behaviors (ICMP
	// rate limiting, RTT jitter) exactly as SimConfig.Lockstep does for
	// IPv4, making discovery a pure function of the probe set. Applied
	// before Mutate.
	Lockstep bool
	// Impair layers the shared packet-level pathologies (loss, burst
	// loss, duplication, reordering, jitter) over the IPv6 network — the
	// same model, knobs and determinism guarantees as SimConfig.Impair.
	Impair Impairments
	// Mutate adjusts topology parameters before generation. It runs after
	// Impair is applied and may override it.
	Mutate func(*netsim6.Params)
}

// Simulation6 is a synthetic IPv6 Internet bound to a clock.
type Simulation6 struct {
	topo  *netsim6.Topology
	net   *netsim6.Net
	clock simclock.Waiter
	seed  int64
}

// NewSimulation6 generates the IPv6 Internet.
func NewSimulation6(cfg Sim6Config) *Simulation6 {
	p := netsim6.DefaultParams(cfg.Seed)
	if cfg.Prefixes > 0 {
		p.Prefixes = cfg.Prefixes
	}
	if cfg.TargetsPerPrefix > 0 {
		p.TargetsPerPrefix = cfg.TargetsPerPrefix
	}
	p.Impair = cfg.Impair.toNetsim()
	if cfg.Lockstep {
		p.ICMPRateLimitPPS = 0
		p.JitterRTT = 0
	}
	if cfg.Mutate != nil {
		cfg.Mutate(&p)
	}
	topo := netsim6.NewTopology(p)
	var clock simclock.Waiter
	if cfg.RealTime {
		clock = simclock.NewReal()
	} else {
		clock = simclock.NewVirtual(time.Unix(0, 0))
	}
	return &Simulation6{topo: topo, net: netsim6.New(topo, clock), clock: clock, seed: cfg.Seed}
}

// Targets returns the candidate target list.
func (s *Simulation6) Targets() []Addr6 { return s.topo.Targets() }

// Vantage returns the scanning source address.
func (s *Simulation6) Vantage() Addr6 { return s.topo.Vantage() }

// TrueDistance returns the ground-truth hop distance of a target.
func (s *Simulation6) TrueDistance(a Addr6) uint8 { return s.topo.DistanceNow(a) }

// Stats reports the network-side counters accumulated so far (same
// impairment accounting as Simulation.Stats; RateLimited counts
// per-interface ICMP budget drops, SilentHops unanswering routers).
func (s *Simulation6) Stats() SimStats {
	return SimStats{
		ProbesSeen:   s.net.Stats.ProbesSent.Load(),
		Responses:    s.net.Stats.Responses.Load(),
		RateLimited:  s.net.Stats.RateLimited.Load(),
		SilentHops:   s.net.Stats.Silent.Load(),
		NoRoute:      s.net.Stats.NoRoute.Load(),
		ProbesLost:   s.net.Stats.ProbesLost.Load(),
		RepliesLost:  s.net.Stats.RepliesLost.Load(),
		Duplicates:   s.net.Stats.Duplicates.Load(),
		Reordered:    s.net.Stats.Reordered.Load(),
		WriteFaults:  s.net.Stats.WriteFaults.Load(),
		FaultDropped: s.net.Stats.FaultDropped.Load(),
		FaultStalled: s.net.Stats.FaultStalled.Load(),
	}
}

// Config6 parameterizes a FlashRoute6 scan. Zero TTL/PPS fields mean the
// defaults (split 16, gap 5, 100 Kpps, preprobing with same-prefix
// prediction).
type Config6 struct {
	Targets []Addr6
	Source  Addr6

	SplitTTL uint8
	GapLimit uint8
	PPS      int

	// Senders is the number of sending goroutines sharing the PPS budget
	// (same engine knob as Config.Senders); 0 and 1 both mean the
	// deterministic single-sender configuration.
	Senders int

	// Receivers is the number of reply-processing workers (same engine
	// knob as Config.Receivers); 0 and 1 both mean the classic inline
	// receiver. Simulation-backed scans wire the per-worker read handles
	// automatically.
	Receivers int

	// Batch is the maximum number of packets per transport call on both
	// data paths (same engine knob as Config.Batch); 0 and 1 both mean
	// one packet per call.
	Batch int

	// PreprobeRetries and ForwardRetries enable the engine's loss
	// tolerance for IPv6 scans exactly as for IPv4: extra preprobe passes
	// over still-unmeasured targets, and rewinds of forward gaps that
	// went silent. ForwardTimeout is how long a silent gap must age
	// before a rewind (0 means the engine default).
	PreprobeRetries int
	ForwardRetries  int
	ForwardTimeout  time.Duration

	PreprobeOff             bool
	NoSamePrefixPrediction  bool
	NoRedundancyElimination bool
	CollectRoutes           bool
	// Observer, when set, sees every probe issued (same contract as
	// Config.Observer: serialized across senders).
	Observer func(dst Addr6, ttl uint8, at time.Duration)
	Seed     int64

	// CheckpointSink, CheckpointEvery and CheckpointInterval arm
	// crash-safe checkpointing exactly as Config's fields of the same
	// names; resume a snapshot with Simulation6.ResumeScan.
	CheckpointSink     func(snapshot []byte) error
	CheckpointEvery    int
	CheckpointInterval time.Duration

	// DrainWait and MinRoundTime shrink the engine's phase-drain and
	// minimum-round durations, as in Config (0 means the defaults).
	DrainWait    time.Duration
	MinRoundTime time.Duration

	// SendRetries and CancelGrace configure transient-write-error retrying
	// and the post-cancellation drain, as in Config.
	SendRetries int
	CancelGrace time.Duration
}

// Result6 is what an IPv6 scan produced.
type Result6 struct {
	inner *core6.Result
}

// Probes returns the total probe count.
func (r *Result6) Probes() uint64 { return r.inner.ProbesSent }

// ScanTime returns the scan duration.
func (r *Result6) ScanTime() time.Duration { return r.inner.ScanTime }

// InterfaceCount returns the unique router interfaces found.
func (r *Result6) InterfaceCount() int { return r.inner.InterfaceCount() }

// ReachedCount returns how many targets answered.
func (r *Result6) ReachedCount() int { return r.inner.ReachedCount() }

// DistancesMeasured / DistancesPredicted report preprobing coverage.
func (r *Result6) DistancesMeasured() int  { return r.inner.DistancesMeasured }
func (r *Result6) DistancesPredicted() int { return r.inner.DistancesPredicted }

// RetransmittedProbes returns how many probes the loss-tolerance retries
// re-issued (0 unless PreprobeRetries or ForwardRetries were set).
func (r *Result6) RetransmittedProbes() uint64 { return r.inner.RetransmittedProbes }

// DuplicateResponses returns how many replies the duplicate guard
// discarded.
func (r *Result6) DuplicateResponses() uint64 { return r.inner.DuplicateResponses }

// ReadErrors counts receive-path read errors (transport failures distinct
// from unparseable packets).
func (r *Result6) ReadErrors() uint64 { return r.inner.ReadErrors }

// SendErrors counts probes abandoned on permanent write failure;
// SendRetries counts transient-failure retry attempts.
func (r *Result6) SendErrors() uint64  { return r.inner.SendErrors }
func (r *Result6) SendRetries() uint64 { return r.inner.SendRetries }

// CheckpointErrors counts snapshots the sink failed to persist.
func (r *Result6) CheckpointErrors() uint64 { return r.inner.CheckpointErrors }

// Interrupted reports that the scan was cancelled before completion.
func (r *Result6) Interrupted() bool { return r.inner.Interrupted }

// Route6 is a discovered IPv6 route.
type Route6 struct {
	Dst     Addr6
	Hops    []Hop6
	Reached bool
	Length  uint8
}

// Hop6 is one discovered IPv6 interface on a route.
type Hop6 struct {
	TTL  uint8
	Addr Addr6
	RTT  time.Duration
}

// Route returns the route traced to a target, or nil.
func (r *Result6) Route(a Addr6) *Route6 {
	rt := r.inner.Route(a)
	if rt == nil {
		return nil
	}
	out := &Route6{Dst: rt.Dst, Reached: rt.Reached, Length: rt.Length}
	for _, h := range rt.Hops {
		out.Hops = append(out.Hops, Hop6{TTL: h.TTL, Addr: h.Addr, RTT: h.RTT})
	}
	return out
}

// ForEachRoute visits every route with responses (hop lists populated
// when Config6.CollectRoutes was set), ordered by destination.
func (r *Result6) ForEachRoute(fn func(*Route6)) {
	r.inner.ForEachRoute(func(rt *core6.Route) {
		out := &Route6{Dst: rt.Dst, Reached: rt.Reached, Length: rt.Length}
		for _, h := range rt.Hops {
			out.Hops = append(out.Hops, Hop6{TTL: h.TTL, Addr: h.Addr, RTT: h.RTT})
		}
		fn(out)
	})
}

// WriteJSONL writes collected routes as one JSON object per line (the
// same deterministic destination-ordered format as Result.WriteJSONL).
func (r *Result6) WriteJSONL(w interface{ Write([]byte) (int, error) }) error {
	return r.inner.WriteJSONL(w)
}

// WriteCSV writes collected routes as CSV rows
// (destination,ttl,hop,rtt_us,reached — the same deterministic format as
// Result.WriteCSV).
func (r *Result6) WriteCSV(w interface{ Write([]byte) (int, error) }) error {
	return r.inner.WriteCSV(w)
}

// toCore6 translates the public IPv6 config to the engine's, filling in
// universe-dependent fields when unset and wiring the per-worker read
// handles of the conn it returns.
func (s *Simulation6) toCore6(cfg Config6) (core6.Config, PacketConn) {
	ic := s.toConfig6(cfg)
	conn := s.net.NewConn()
	if cfg.Receivers > 1 {
		ic.NewReader = func() core6.PacketReader { return conn.NewReader() }
	}
	return ic, conn
}

// toConfig6 is the transport-independent half of toCore6: the pure
// config translation, reused by the cluster path where every worker
// opens its own vantage connection.
func (s *Simulation6) toConfig6(cfg Config6) core6.Config {
	ic := core6.DefaultConfig()
	ic.Targets = cfg.Targets
	if ic.Targets == nil {
		ic.Targets = s.topo.Targets()
	}
	ic.Source = cfg.Source
	var zero Addr6
	if ic.Source == zero {
		ic.Source = s.topo.Vantage()
	}
	if cfg.SplitTTL != 0 {
		ic.SplitTTL = cfg.SplitTTL
	}
	if cfg.GapLimit != 0 {
		ic.GapLimit = cfg.GapLimit
	}
	if cfg.PPS != 0 {
		ic.PPS = cfg.PPS
	}
	ic.Senders = cfg.Senders
	ic.Receivers = cfg.Receivers
	ic.Batch = cfg.Batch
	ic.PreprobeRetries = cfg.PreprobeRetries
	ic.ForwardRetries = cfg.ForwardRetries
	ic.ForwardTimeout = cfg.ForwardTimeout
	ic.Preprobe = !cfg.PreprobeOff
	ic.SamePrefixPrediction = !cfg.NoSamePrefixPrediction
	ic.NoRedundancyElimination = cfg.NoRedundancyElimination
	ic.CollectRoutes = cfg.CollectRoutes
	ic.Observer = cfg.Observer
	ic.Seed = cfg.Seed
	if ic.Seed == 0 {
		ic.Seed = s.seed
	}
	ic.CheckpointSink = cfg.CheckpointSink
	ic.CheckpointEvery = cfg.CheckpointEvery
	ic.CheckpointInterval = cfg.CheckpointInterval
	if cfg.DrainWait != 0 {
		ic.DrainWait = cfg.DrainWait
	}
	if cfg.MinRoundTime != 0 {
		ic.MinRoundTime = cfg.MinRoundTime
	}
	ic.SendRetries = cfg.SendRetries
	ic.CancelGrace = cfg.CancelGrace
	return ic
}

// Scan runs a FlashRoute6 scan against this simulation, filling in
// universe-dependent fields when unset.
func (s *Simulation6) Scan(cfg Config6) (*Result6, error) {
	return s.ScanContext(context.Background(), cfg)
}

// ScanContext is Scan with graceful cancellation (see Scanner.RunContext).
func (s *Simulation6) ScanContext(ctx context.Context, cfg Config6) (*Result6, error) {
	ic, conn := s.toCore6(cfg)
	sc, err := core6.NewScanner(ic, conn, s.clock)
	if err != nil {
		return nil, err
	}
	res, err := sc.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return &Result6{inner: res}, nil
}

// ResumeScan continues a checkpointed IPv6 scan against this simulation
// (same configuration contract as ResumeScanner).
func (s *Simulation6) ResumeScan(cfg Config6, snapshot []byte) (*Result6, error) {
	return s.ResumeScanContext(context.Background(), cfg, snapshot)
}

// ResumeScanContext is ResumeScan with graceful cancellation (see
// Scanner.RunContext): the resumed run can itself be checkpointed and
// interrupted again.
func (s *Simulation6) ResumeScanContext(ctx context.Context, cfg Config6, snapshot []byte) (*Result6, error) {
	ic, conn := s.toCore6(cfg)
	sc, err := core6.ResumeScanner(ic, conn, s.clock, snapshot)
	if err != nil {
		return nil, err
	}
	res, err := sc.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return &Result6{inner: res}, nil
}
