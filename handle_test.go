package flashroute

import (
	"context"
	"sort"
	"testing"
	"time"
)

// ifaceSet collects the discovered interface set in sorted order — the
// public-API fingerprint used by the handle tests.
func ifaceSet(r *Result) []uint32 {
	var out []uint32
	r.ForEachInterface(func(a uint32) { out = append(out, a) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalSets(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestScanHandleLifecycle: a StartScan handle must report monotone
// progress, complete, and produce exactly what a synchronous Scan of the
// same seed produces.
func TestScanHandleLifecycle(t *testing.T) {
	const blocks, seed = 512, 7
	direct, err := NewSimulation(SimConfig{Blocks: blocks, Seed: seed}).Scan(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	sim := NewSimulation(SimConfig{Blocks: blocks, Seed: seed})
	h, err := sim.StartScan(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for {
		n := h.Probes()
		if n < last {
			t.Fatalf("progress went backwards: %d after %d", n, last)
		}
		last = n
		select {
		case <-h.Done():
		default:
			continue
		}
		break
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted() {
		t.Fatal("uncancelled scan marked Interrupted")
	}
	if h.Probes() != res.Probes() {
		t.Fatalf("handle counted %d probes, result has %d", h.Probes(), res.Probes())
	}
	if !equalSets(ifaceSet(res), ifaceSet(direct)) {
		t.Fatalf("handle scan found %d interfaces, direct scan %d",
			res.InterfaceCount(), direct.InterfaceCount())
	}
}

// TestScanHandleCancel: cancelling a handle mid-scan yields a valid
// partial result with Interrupted set.
func TestScanHandleCancel(t *testing.T) {
	sim := NewSimulation(SimConfig{Blocks: 2048, Seed: 3, RealTime: true})
	cfg := DefaultConfig()
	cfg.PPS = 2_000 // slow enough that cancellation lands mid-scan
	cfg.CancelGrace = 50 * time.Millisecond
	h, err := sim.StartScan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for h.Probes() < 500 {
		time.Sleep(time.Millisecond)
	}
	h.Cancel()
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted() {
		t.Fatal("cancelled scan not marked Interrupted")
	}
	if res.Probes() == 0 {
		t.Fatal("partial result has no probes")
	}
}

// TestScanHandleSetRate: retargeting the rate through a handle mid-scan
// must not change what a lockstep-environment scan discovers.
func TestScanHandleSetRate(t *testing.T) {
	const blocks, seed = 512, 7
	mk := func() *Simulation {
		return NewSimulation(SimConfig{Blocks: blocks, Seed: seed, Lockstep: true})
	}
	cfg := DefaultConfig()
	cfg.NoRedundancyElimination = true
	direct, err := mk().Scan(cfg)
	if err != nil {
		t.Fatal(err)
	}

	h, err := mk().StartScan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for h.Probes() < direct.Probes()/4 {
		select {
		case <-h.Done():
		default:
			continue
		}
		break
	}
	h.SetRate(cfg.PPS / 100)
	h.SetRate(100_000)
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(ifaceSet(res), ifaceSet(direct)) {
		t.Fatalf("rate retarget changed discovery: %d interfaces, want %d",
			res.InterfaceCount(), direct.InterfaceCount())
	}
}

// TestNewSimulationCIDRs: user-supplied ranges must surface parse errors
// as errors (NewSimulation keeps its documented panic).
func TestNewSimulationCIDRs(t *testing.T) {
	sim, err := NewSimulationCIDRs(SimConfig{CIDRs: []string{"10.0.0.0/16", "10.1.0.0/16"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Blocks() != 512 {
		t.Fatalf("blocks=%d want 512", sim.Blocks())
	}
	for _, bad := range []string{"10.0.0.0/8x", "bogus", "10.0.0.0/28"} {
		if _, err := NewSimulationCIDRs(SimConfig{CIDRs: []string{bad}}); err == nil {
			t.Errorf("NewSimulationCIDRs(%q) accepted, want error", bad)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewSimulation with a bad CIDR must panic")
		}
	}()
	NewSimulation(SimConfig{CIDRs: []string{"10.0.0.0/8x"}})
}

// TestScanHandle6Cancel: Wait after Cancel on the IPv6 handle returns a
// valid partial result with Interrupted set, mirroring the IPv4 contract
// pinned by TestScanHandleCancel.
func TestScanHandle6Cancel(t *testing.T) {
	sim := NewSimulation6(Sim6Config{Prefixes: 512, TargetsPerPrefix: 16, Seed: 3, RealTime: true})
	cfg := Config6{PPS: 2_000, CancelGrace: 50 * time.Millisecond}
	h, err := sim.StartScan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for h.Probes() < 500 {
		time.Sleep(time.Millisecond)
	}
	h.Cancel()
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("Wait after Cancel returned nil result")
	}
	if !res.Interrupted() {
		t.Fatal("cancelled scan not marked Interrupted")
	}
	if res.Probes() == 0 {
		t.Fatal("partial result has no probes")
	}
}

// TestScanHandle6Lifecycle: the IPv6 handle mirrors the IPv4 contract —
// monotone progress and a result identical to the synchronous scan.
func TestScanHandle6Lifecycle(t *testing.T) {
	mk := func() *Simulation6 {
		return NewSimulation6(Sim6Config{Prefixes: 64, TargetsPerPrefix: 16, Seed: 5})
	}
	direct, err := mk().Scan(Config6{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := mk().StartScan(context.Background(), Config6{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if h.Probes() != res.Probes() {
		t.Fatalf("handle counted %d probes, result has %d", h.Probes(), res.Probes())
	}
	if res.InterfaceCount() != direct.InterfaceCount() || res.ReachedCount() != direct.ReachedCount() {
		t.Fatalf("handle scan: %d interfaces / %d reached, direct: %d / %d",
			res.InterfaceCount(), res.ReachedCount(),
			direct.InterfaceCount(), direct.ReachedCount())
	}
}
