// Command frreport summarizes a flashroute-go binary result file (written
// with cmd/flashroute -binary-output): unique interfaces, reached
// destinations, route length distribution, per-TTL response counts.
//
//	frreport scan.frv4
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/flashroute/flashroute/internal/output"
)

func main() {
	perTTL := flag.Bool("per-ttl", false, "also print per-TTL response counts")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: frreport [-per-ttl] <result-file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := output.NewReader(f)
	if err != nil {
		fatal(err)
	}
	s, err := output.Summarize(r)
	if err != nil {
		fatal(err)
	}
	if err := s.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	if *perTTL {
		fmt.Println("responses per TTL:")
		for ttl := 1; ttl < len(s.PerTTL); ttl++ {
			if s.PerTTL[ttl] == 0 {
				continue
			}
			fmt.Printf("  %2d: %d\n", ttl, s.PerTTL[ttl])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "frreport:", err)
	os.Exit(1)
}
