// Command frtopo inspects the synthetic Internet the scanners run
// against: aggregate statistics, the census hitlist, and ground-truth
// traceroutes of individual addresses.
//
//	frtopo -blocks 65536 -seed 1
//	frtopo -blocks 65536 -trace 4.0.123.7
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/flashroute/flashroute/internal/hitlist"
	"github.com/flashroute/flashroute/internal/netsim"
	"github.com/flashroute/flashroute/internal/probe"
)

func main() {
	var (
		blocks   = flag.Int("blocks", 65536, "universe size in /24 blocks")
		seed     = flag.Int64("seed", 1, "topology seed")
		traceStr = flag.String("trace", "", "print the ground-truth route to this address and exit")
	)
	flag.Parse()

	u := netsim.NewSyntheticUniverse(*blocks)
	topo := netsim.NewTopology(u, netsim.DefaultParams(*seed))

	if *traceStr != "" {
		dst, err := probe.ParseAddr(*traceStr)
		if err != nil {
			fatal(err)
		}
		traceOne(topo, dst)
		return
	}

	fmt.Printf("universe: %d /24 blocks (%s .. %s)\n", u.NumBlocks(),
		probe.FormatAddr(u.BlockAddr(0)), probe.FormatAddr(u.BlockAddr(u.NumBlocks()-1)|255))
	fmt.Printf("stub runs: %d\n", topo.NumStubs())

	var distHist [40]int
	var routed, occupied, responsiveRandom int
	sample := u.NumBlocks()
	for b := 0; b < sample; b++ {
		if gw := topo.GatewayOfBlock(b); gw != 0 {
			routed++
		}
		if topo.BlockOccupied(b) {
			occupied++
		}
		dst := u.BlockAddr(b) | uint32(1+(uint64(b)*2654435761)%254)
		if d := topo.DistanceNow(dst, 0); d > 0 && int(d) < len(distHist) {
			distHist[d]++
		}
		if topo.Resolve(dst, 32, 0, 0, probe.ProtoUDP).Kind == netsim.HopDestUDP {
			responsiveRandom++
		}
	}
	fmt.Printf("routed blocks: %d (%.1f%%), occupied: %d (%.1f%%)\n",
		routed, 100*float64(routed)/float64(sample),
		occupied, 100*float64(occupied)/float64(sample))
	fmt.Printf("random representatives answering preprobes: %d (%.1f%%)\n",
		responsiveRandom, 100*float64(responsiveRandom)/float64(sample))

	hl := hitlist.Generate(topo)
	fmt.Printf("census hitlist: %d blocks, %d ping-responsive entries (%.1f%%)\n",
		hl.Len(), hl.Responsive(), 100*float64(hl.Responsive())/float64(hl.Len()))

	fmt.Println("hop-distance distribution of routed destinations:")
	for d := 1; d < len(distHist); d++ {
		if distHist[d] == 0 {
			continue
		}
		fmt.Printf("  %2d: %d\n", d, distHist[d])
	}
}

func traceOne(topo *netsim.Topology, dst uint32) {
	fmt.Printf("ground-truth route to %s (flow 0):\n", probe.FormatAddr(dst))
	for ttl := uint8(1); ttl <= 32; ttl++ {
		h := topo.Resolve(dst, ttl, 0, 0, probe.ProtoUDP)
		switch h.Kind {
		case netsim.HopRouter:
			fmt.Printf("  %2d  %s\n", ttl, probe.FormatAddr(h.Addr))
		case netsim.HopSilentRouter:
			fmt.Printf("  %2d  * (silent router %s)\n", ttl, probe.FormatAddr(h.Addr))
		case netsim.HopNone:
			fmt.Printf("  %2d  *\n", ttl)
		default:
			fmt.Printf("  %2d  %s  [destination reached, distance %d]\n",
				ttl, probe.FormatAddr(h.Addr), h.Depth)
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "frtopo:", err)
	os.Exit(1)
}
