package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkBatchSizeSweep/size-32-8   \t 1477059\t       176.0 ns/op\t       0 B/op\t       0 allocs/op", 8)
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkBatchSizeSweep/size-32" {
		t.Errorf("name %q (GOMAXPROCS suffix must be stripped)", r.Name)
	}
	// GOMAXPROCS=1 runs carry no suffix; a trailing numeric component is
	// part of the benchmark's own name and must survive.
	if r1, ok := parseBenchLine("BenchmarkBatchSizeSweep/size-8 \t 99 \t 180.0 ns/op", 1); !ok || r1.Name != "BenchmarkBatchSizeSweep/size-8" {
		t.Errorf("procs=1: name %q, want size-8 intact", r1.Name)
	}
	if r.Iterations != 1477059 || r.NsPerOp != 176.0 {
		t.Errorf("iters/ns = %d/%v", r.Iterations, r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 0 || r.AllocsOp == nil || *r.AllocsOp != 0 {
		t.Errorf("benchmem fields not parsed: %+v", r)
	}

	r, ok = parseBenchLine("BenchmarkTable5MaxRate-8   3   400123456 ns/op   98.5 fr16-kpps   33.1 yarrp32-kpps", 8)
	if !ok {
		t.Fatal("metric line did not parse")
	}
	if r.Metrics["fr16-kpps"] != 98.5 || r.Metrics["yarrp32-kpps"] != 33.1 {
		t.Errorf("custom metrics not captured: %v", r.Metrics)
	}

	for _, bad := range []string{
		"PASS",
		"goos: linux",
		"BenchmarkHalf-8 123",
		"Benchmark-x notanumber ns/op",
	} {
		if _, ok := parseBenchLine(bad, 8); ok {
			t.Errorf("%q should not parse", bad)
		}
	}
}
