// Command frbench runs the repository's performance benchmark suite and
// records the results as a JSON trajectory point (BENCH_<date>.json),
// so data-path regressions show up as a diff rather than an anecdote.
//
// It shells out to `go test -bench` (the benchmarks themselves live in
// the root package's bench_test.go), parses the standard benchmark
// output — including custom b.ReportMetric metrics like fr16-kpps —
// and emits one self-describing JSON document:
//
//	frbench                          # full perf suite -> BENCH_<today>.json
//	frbench -bench BenchmarkBatch    # subset
//	frbench -benchtime 1x -out -     # smoke run, JSON to stdout
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// perfSuite is the default benchmark set: the paper-scale rate table,
// the sender/receiver scaling curves, the batched data-path pair
// introduced with the wire-speed transport work, and the slab result
// store's write/emit path with its bytes/route memory metric.
const perfSuite = "^(BenchmarkTable5MaxRate|BenchmarkSenderScaling|BenchmarkReceiverScaling|BenchmarkBatchWrite|BenchmarkBatchSizeSweep|BenchmarkClusterStopSet|BenchmarkTraceStore)$"

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted trajectory point.
type Document struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPU        string   `json:"cpu,omitempty"`
	Bench      string   `json:"bench_regexp"`
	BenchTime  string   `json:"benchtime"`
	Package    string   `json:"package"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	var (
		benchRE   = flag.String("bench", perfSuite, "benchmark regexp passed to go test -bench")
		benchTime = flag.String("benchtime", "1s", "go test -benchtime value (use 1x for a smoke run)")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "", "output file (default BENCH_<date>.json; - for stdout)")
		date      = flag.String("date", "", "date stamp for the document and default filename (default today)")
	)
	flag.Parse()

	day := *date
	if day == "" {
		day = time.Now().Format("2006-01-02")
	}
	path := *out
	if path == "" {
		path = "BENCH_" + day + ".json"
	}

	args := []string{"test", "-run", "^$", "-bench", *benchRE, "-benchmem",
		"-benchtime", *benchTime, *pkg}
	fmt.Fprintf(os.Stderr, "frbench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fatal(fmt.Errorf("go test -bench: %w", err))
	}
	os.Stderr.Write(buf.Bytes())

	doc := Document{
		Date:      day,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     *benchRE,
		BenchTime: *benchTime,
		Package:   *pkg,
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseBenchLine(line, runtime.GOMAXPROCS(0)); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		} else if strings.HasPrefix(line, "cpu:") {
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines matched %q", *benchRE))
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if path == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "frbench: %d benchmarks written to %s\n", len(doc.Benchmarks), path)
}

// parseBenchLine parses one standard benchmark result line:
//
//	BenchmarkName-8  123  456.7 ns/op  0 B/op  0 allocs/op  89.1 fr16-kpps
//
// Value/unit pairs beyond the standard three land in Metrics. procs is
// the GOMAXPROCS the run used: go test appends "-<procs>" to benchmark
// names only when procs > 1, and only that exact suffix is stripped (a
// trailing "-8" in a sub-benchmark's own name must survive).
func parseBenchLine(line string, procs int) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	name := fields[0]
	if procs > 1 {
		name = strings.TrimSuffix(name, "-"+strconv.Itoa(procs))
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "frbench:", err)
	os.Exit(1)
}
