package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/flashroute/flashroute"
	"github.com/flashroute/flashroute/internal/metrics"
)

type rawOpts struct {
	cidrs           string
	source          string
	seed            int64
	split, gap      int
	pps             int
	senders         int
	receivers       int
	batch           int
	preprobe        string
	span            int
	preprobeRetries int
	forwardRetries  int
	forwardTimeout  time.Duration
	noRedund        bool
	exhaustive      bool
	sendRetries     int
	checkpoint      string
	ckptEvery       int
	resumeFrom      string
	excludeF        string
	output          string
	binOutput       string
}

// scanRaw is the -transport raw path: the same engine, paced by the wall
// clock, probing real address space through the Linux raw-socket backend
// (sendmmsg/recvmmsg when -batch > 1). Needs CAP_NET_RAW, -source and
// -cidrs; impairment and fault flags are simulation-only and ignored.
func scanRaw(ctx context.Context, o rawOpts) {
	if o.cidrs == "" {
		fatal(errors.New("-transport raw needs -cidrs to define the target address space"))
	}
	if o.source == "" {
		fatal(errors.New("-transport raw needs -source (the vantage point's IPv4 address)"))
	}
	src, err := flashroute.ParseAddr(o.source)
	if err != nil {
		fatal(fmt.Errorf("bad -source: %w", err))
	}
	u, err := flashroute.ParseTargetCIDRs(strings.Split(o.cidrs, ","))
	if err != nil {
		fatal(err)
	}
	switch o.preprobe {
	case "off", "random":
	default:
		fatal(fmt.Errorf("-preprobe %q is not available with -transport raw (use random or off)", o.preprobe))
	}

	cfg := flashroute.DefaultConfig()
	cfg.Blocks = u.NumBlocks()
	cfg.Targets = u.RandomTargets(o.seed)
	cfg.BlockOf = u.BlockOf
	cfg.Source = src
	cfg.Seed = o.seed
	cfg.SplitTTL = uint8(o.split)
	if o.gap == 0 {
		cfg.GapLimitZero = true
	} else {
		cfg.GapLimit = uint8(o.gap)
	}
	if o.pps == 0 {
		cfg.Unthrottled = true
	} else {
		cfg.PPS = o.pps
	}
	cfg.Senders = o.senders
	cfg.Receivers = o.receivers
	cfg.Batch = o.batch
	if o.preprobe == "off" {
		cfg.Preprobe = flashroute.PreprobeOff
	}
	cfg.ProximitySpan = o.span
	cfg.PreprobeRetries = o.preprobeRetries
	cfg.ForwardRetries = o.forwardRetries
	cfg.ForwardTimeout = o.forwardTimeout
	cfg.NoRedundancyElimination = o.noRedund
	cfg.Exhaustive = o.exhaustive
	cfg.SendRetries = o.sendRetries
	cfg.CollectRoutes = o.output != "" || o.binOutput != ""
	if o.checkpoint != "" {
		cfg.CheckpointSink = checkpointSink(o.checkpoint)
		cfg.CheckpointEvery = o.ckptEvery
	}

	excl := flashroute.ReservedExclusions()
	if o.excludeF != "" {
		f, err := os.Open(o.excludeF)
		if err != nil {
			fatal(err)
		}
		user, err := flashroute.ReadExclusions(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		excl.Merge(user)
	}
	cfg.Skip = u.SkipFor(excl)

	conn, err := flashroute.DialRaw()
	if err != nil {
		fatal(err)
	}
	defer conn.Close()
	fmt.Printf("raw-socket scan: %d /24 blocks, source %s, batch %d\n",
		u.NumBlocks(), o.source, o.batch)

	var sc *flashroute.Scanner
	if o.resumeFrom != "" {
		snap, rerr := os.ReadFile(o.resumeFrom)
		if rerr != nil {
			fatal(rerr)
		}
		fmt.Printf("resuming from checkpoint %s\n", o.resumeFrom)
		sc, err = flashroute.ResumeScanner(cfg, conn, flashroute.RealClock(), snap)
		if errors.Is(err, flashroute.ErrCheckpointComplete) {
			fmt.Printf("checkpoint %s is from a completed scan; nothing to resume\n", o.resumeFrom)
			return
		}
	} else {
		sc, err = flashroute.NewScanner(cfg, conn, flashroute.RealClock())
	}
	if err != nil {
		fatal(err)
	}
	res, err := sc.RunContext(ctx)
	if err != nil {
		fatal(err)
	}
	reportInterrupt(res.Interrupted(), o.checkpoint)

	fmt.Printf("scan time:            %v\n", res.ScanTime())
	fmt.Printf("probes sent:          %d (preprobing: %d)\n", res.Probes(), res.PreprobeProbes())
	fmt.Printf("interfaces found:     %d\n", res.InterfaceCount())
	fmt.Printf("rounds:               %d\n", res.Rounds())
	fmt.Printf("distances measured:   %d, predicted: %d\n", res.DistancesMeasured(), res.DistancesPredicted())
	fmt.Printf("mismatched responses: %d (in-flight destination modification)\n", res.MismatchedResponses())

	resil := metrics.Resilience{
		Retransmitted:       res.RetransmittedProbes(),
		DuplicatesDiscarded: res.DuplicateResponses(),
		ReadErrors:          res.ReadErrors(),
		SendErrors:          res.SendErrors(),
		SendRetries:         res.SendRetries(),
	}
	if resil.Any() {
		if err := resil.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if n := res.CheckpointErrors(); n > 0 {
		fmt.Fprintf(os.Stderr, "flashroute: %d checkpoint(s) failed to persist\n", n)
	}

	if o.output != "" {
		f, err := os.Create(o.output)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("routes written to %s\n", o.output)
	}
	if o.binOutput != "" {
		f, err := os.Create(o.binOutput)
		if err != nil {
			fatal(err)
		}
		n, err := res.WriteBinary(f)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%d binary records written to %s\n", n, o.binOutput)
	}
}
