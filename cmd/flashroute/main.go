// Command flashroute runs FlashRoute scans against the bundled Internet
// simulation, mirroring the original tool's command line.
//
// The repository is stdlib-only, so the transport is the packet-level
// simulator rather than a raw socket; every scanning code path above the
// socket (probe construction, encoding, control state, rounds, preprobing,
// discovery-optimized mode, result collection) is the real engine.
//
// Examples:
//
//	flashroute -blocks 65536 -seed 1
//	flashroute -blocks 65536 -split 32 -preprobe hitlist -extra-scans 3
//	flashroute -cidrs 10.0.0.0/12,172.16.0.0/14 -output routes.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"github.com/flashroute/flashroute"
	"github.com/flashroute/flashroute/internal/metrics"
)

func main() {
	var (
		ipv6       = flag.Bool("6", false, "scan a simulated IPv6 Internet (FlashRoute6, §5.4); composes with -senders, -loss/-dup/-reorder and the retry flags")
		prefixes   = flag.Int("prefixes", 2048, "with -6: allocated /48 prefixes in the simulated IPv6 Internet")
		perPrefix  = flag.Int("per-prefix", 16, "with -6: candidate targets per prefix")
		blocks     = flag.Int("blocks", 65536, "number of /24 blocks in the simulated universe")
		cidrs      = flag.String("cidrs", "", "comma-separated CIDRs (up to /24) instead of -blocks")
		seed       = flag.Int64("seed", 1, "simulation and permutation seed")
		split      = flag.Int("split", 16, "default split TTL (paper: 16 or 32)")
		gap        = flag.Int("gap", 5, "forward-probing gap limit")
		pps        = flag.Int("pps", 100000, "probing rate in packets per second (0 = unthrottled)")
		senders    = flag.Int("senders", 1, "number of sending goroutines (1 = deterministic paper-faithful mode)")
		receivers  = flag.Int("receivers", 1, "number of reply-processing workers (1 = paper-faithful inline receiver)")
		workers    = flag.Int("workers", 1, "distributed scanning: run K worker loops over distinct vantage ingresses sharing one stop set (sim transport, IPv4 only)")
		wdTimeout  = flag.Duration("watchdog-timeout", 0, "with -workers: per-worker progress watchdog; a stalled worker's shard migrates to a peer vantage (0 disables self-healing)")
		maxMigrate = flag.Int("max-migrations", 0, "with -workers: per-shard migration budget before the coordinator abandons a failed shard (0 = default of 3, negative disables)")
		batch      = flag.Int("batch", 0, "packets per transport call on the send and receive paths (sendmmsg/recvmmsg-style batching; 0 or 1 = classic one-packet-per-call)")
		transport  = flag.String("transport", "sim", "transport backend: sim (bundled Internet simulation) or raw (Linux raw sockets; needs CAP_NET_RAW, -source and -cidrs)")
		source     = flag.String("source", "", "with -transport raw: the vantage point's source IPv4 address")
		preprobe   = flag.String("preprobe", "random", "preprobing mode: off, random, hitlist")
		span       = flag.Int("span", 5, "proximity span for distance prediction")
		noRedund   = flag.Bool("no-redundancy", false, "disable backward-probing redundancy elimination")
		exhaustive = flag.Bool("exhaustive", false, "probe every TTL 1..32 (Yarrp-32-UDP simulation mode)")
		extraScans = flag.Int("extra-scans", 0, "discovery-optimized mode: number of port-varied extra scans")
		output     = flag.String("output", "", "write discovered routes as CSV to this file")
		binOutput  = flag.String("binary-output", "", "write discovered routes in the compact binary format (summarize with frreport)")
		excludeF   = flag.String("exclude", "", "exclusion-list file (one CIDR or address per line); reserved space is always excluded")
		targetsF   = flag.String("targets", "", "exterior target file (one address per line; unlisted blocks use random representatives)")
		hitlistOut = flag.String("gen-hitlist", "", "generate the simulated census hitlist to this file and exit")
		realTime   = flag.Bool("real-time", false, "run on the wall clock instead of virtual time")

		loss          = flag.Float64("loss", 0, "independent packet loss probability (0..1)")
		burstToBad    = flag.Float64("burst-to-bad", 0, "Gilbert–Elliott good→bad transition probability per packet")
		burstToGood   = flag.Float64("burst-to-good", 0, "Gilbert–Elliott bad→good transition probability (mean burst = 1/p packets)")
		burstLoss     = flag.Float64("burst-loss", 0, "extra loss probability while in the bad state")
		dup           = flag.Float64("dup", 0, "packet duplication probability (0..1)")
		reorder       = flag.Float64("reorder", 0, "response reordering probability (needs -reorder-window)")
		reorderWindow = flag.Duration("reorder-window", 0, "reordering delay window (e.g. 30ms)")
		extraJitter   = flag.Duration("extra-jitter", 0, "extra uniform response latency jitter (e.g. 5ms)")

		preprobeRetries = flag.Int("preprobe-retries", 0, "extra preprobe passes over still-unmeasured blocks")
		forwardRetries  = flag.Int("forward-retries", 0, "per-destination forward-probing retries after silence")
		forwardTimeout  = flag.Duration("forward-timeout", 0, "silence before a forward retry fires (default 500ms)")

		checkpoint = flag.String("checkpoint", "", "write crash-safe checkpoints to this file (atomic tmp+rename); SIGINT/SIGTERM also writes a final one")
		ckptEvery  = flag.Int("checkpoint-every", 100000, "with -checkpoint: snapshot cadence in probes sent")
		resumeFrom = flag.String("resume", "", "resume a previous scan from this checkpoint file (must use the same seed and topology flags)")
		faultsSpec = flag.String("faults", "", "deterministic transport fault schedule, e.g. write:2s+500ms,stall:3s+1s,flap:4s+200ms")
		sendRetry  = flag.Int("send-retries", 0, "retry budget for transient send failures (capped exponential backoff)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the scan to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile after the scan to this file")

		footprintMode = flag.Bool("footprint", false, "print the estimated memory footprint of the configured universe (§3.4/§5.4 control state plus the result store) and exit without scanning")
	)
	flag.Parse()

	if *footprintMode {
		if *ipv6 {
			fatal(errors.New("-footprint is IPv4-only (the estimate models the /24-block DCB layout)"))
		}
		b := *blocks
		if *cidrs != "" {
			var err error
			b, err = flashroute.CountBlocks(strings.Split(*cidrs, ","))
			if err != nil {
				fatal(err)
			}
		}
		printFootprint(b)
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memProfile)

	impair := flashroute.Impairments{
		LossProb:      *loss,
		BurstToBad:    *burstToBad,
		BurstToGood:   *burstToGood,
		BurstLoss:     *burstLoss,
		DupProb:       *dup,
		ReorderProb:   *reorder,
		ReorderWindow: *reorderWindow,
		ExtraJitter:   *extraJitter,
	}
	if *faultsSpec != "" {
		faults, err := flashroute.ParseFaultSpec(*faultsSpec)
		if err != nil {
			fatal(err)
		}
		impair.Faults = faults
	}

	// SIGINT/SIGTERM trigger graceful shutdown: stop sending, drain
	// in-flight replies, emit the partial result and a final checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *transport {
	case "sim":
	case "raw":
		if *ipv6 {
			fatal(errors.New("-transport raw is IPv4-only (the raw-socket backend has no IPv6 path yet)"))
		}
		if *workers > 1 {
			fatal(errors.New("-workers needs the sim transport (the raw backend has a single vantage)"))
		}
		scanRaw(ctx, rawOpts{
			cidrs:           *cidrs,
			source:          *source,
			seed:            *seed,
			split:           *split,
			gap:             *gap,
			pps:             *pps,
			senders:         *senders,
			receivers:       *receivers,
			batch:           *batch,
			preprobe:        *preprobe,
			span:            *span,
			preprobeRetries: *preprobeRetries,
			forwardRetries:  *forwardRetries,
			forwardTimeout:  *forwardTimeout,
			noRedund:        *noRedund,
			exhaustive:      *exhaustive,
			sendRetries:     *sendRetry,
			checkpoint:      *checkpoint,
			ckptEvery:       *ckptEvery,
			resumeFrom:      *resumeFrom,
			excludeF:        *excludeF,
			output:          *output,
			binOutput:       *binOutput,
		})
		return
	default:
		fatal(fmt.Errorf("unknown -transport %q (sim or raw)", *transport))
	}

	if *ipv6 {
		if *workers > 1 {
			fatal(errors.New("-workers is IPv4-only on the CLI (use the frserved cluster job type for IPv6)"))
		}
		scan6(ctx, scan6Opts{
			prefixes:        *prefixes,
			perPrefix:       *perPrefix,
			seed:            *seed,
			realTime:        *realTime,
			impair:          impair,
			split:           uint8(*split),
			gap:             uint8(*gap),
			pps:             *pps,
			senders:         *senders,
			receivers:       *receivers,
			batch:           *batch,
			preprobe:        *preprobe,
			preprobeRetries: *preprobeRetries,
			forwardRetries:  *forwardRetries,
			forwardTimeout:  *forwardTimeout,
			noRedund:        *noRedund,
			checkpoint:      *checkpoint,
			ckptEvery:       *ckptEvery,
			resumeFrom:      *resumeFrom,
			sendRetries:     *sendRetry,
		})
		return
	}

	simCfg := flashroute.SimConfig{
		Blocks:   *blocks,
		Seed:     *seed,
		RealTime: *realTime,
		Impair:   impair,
	}
	if *cidrs != "" {
		simCfg.CIDRs = strings.Split(*cidrs, ",")
		simCfg.Blocks = 0
	}
	sim := flashroute.NewSimulation(simCfg)
	fmt.Printf("simulated universe: %d /24 blocks, seed %d\n", sim.Blocks(), *seed)

	if *hitlistOut != "" {
		f, err := os.Create(*hitlistOut)
		if err != nil {
			fatal(err)
		}
		if err := sim.WriteHitlist(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("hitlist written to %s\n", *hitlistOut)
		return
	}

	cfg := flashroute.DefaultConfig()
	cfg.SplitTTL = uint8(*split)
	if *gap == 0 {
		cfg.GapLimitZero = true
	} else {
		cfg.GapLimit = uint8(*gap)
	}
	if *pps == 0 {
		cfg.Unthrottled = true
	} else {
		cfg.PPS = *pps
	}
	cfg.Senders = *senders
	cfg.Receivers = *receivers
	cfg.Batch = *batch
	switch *preprobe {
	case "off":
		cfg.Preprobe = flashroute.PreprobeOff
	case "random":
		cfg.Preprobe = flashroute.PreprobeRandom
	case "hitlist":
		cfg.Preprobe = flashroute.PreprobeHitlist
		cfg.PreprobeTargets = sim.HitlistTargets()
	default:
		fatal(fmt.Errorf("unknown -preprobe %q", *preprobe))
	}
	cfg.ProximitySpan = *span
	cfg.PreprobeRetries = *preprobeRetries
	cfg.ForwardRetries = *forwardRetries
	cfg.ForwardTimeout = *forwardTimeout
	cfg.NoRedundancyElimination = *noRedund
	cfg.Exhaustive = *exhaustive
	cfg.ExtraScans = *extraScans
	cfg.CollectRoutes = *output != "" || *binOutput != ""
	cfg.SendRetries = *sendRetry
	if *checkpoint != "" {
		cfg.CheckpointSink = checkpointSink(*checkpoint)
		cfg.CheckpointEvery = *ckptEvery
	}

	if *targetsF != "" {
		f, err := os.Open(*targetsF)
		if err != nil {
			fatal(err)
		}
		targets, _, err := sim.ReadTargets(f, sim.RandomTargets())
		f.Close()
		if err != nil {
			fatal(err)
		}
		cfg.Targets = targets
	}

	excl := flashroute.ReservedExclusions()
	if *excludeF != "" {
		f, err := os.Open(*excludeF)
		if err != nil {
			fatal(err)
		}
		user, err := flashroute.ReadExclusions(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		excl.Merge(user)
	}
	cfg.Skip = sim.SkipFor(excl)

	if *workers > 1 {
		if *checkpoint != "" || *resumeFrom != "" {
			fatal(errors.New("-workers does not compose with -checkpoint/-resume (the coordinator hands shards off internally)"))
		}
		if *binOutput != "" {
			fatal(errors.New("-binary-output is not supported with -workers (use -output)"))
		}
		scanCluster(ctx, sim, cfg, flashroute.ClusterOptions{
			Workers:         *workers,
			WatchdogTimeout: *wdTimeout,
			MaxMigrations:   *maxMigrate,
		}, *output)
		return
	}

	var res *flashroute.Result
	var err error
	if *resumeFrom != "" {
		snap, rerr := os.ReadFile(*resumeFrom)
		if rerr != nil {
			fatal(rerr)
		}
		fmt.Printf("resuming from checkpoint %s\n", *resumeFrom)
		res, err = sim.ResumeScanContext(ctx, cfg, snap)
		if errors.Is(err, flashroute.ErrCheckpointComplete) {
			fmt.Printf("checkpoint %s is from a completed scan; nothing to resume\n", *resumeFrom)
			return
		}
	} else {
		res, err = sim.ScanContext(ctx, cfg)
	}
	if err != nil {
		fatal(err)
	}
	reportInterrupt(res.Interrupted(), *checkpoint)

	fmt.Printf("scan time:            %v\n", res.ScanTime())
	fmt.Printf("probes sent:          %d (preprobing: %d)\n", res.Probes(), res.PreprobeProbes())
	fmt.Printf("interfaces found:     %d\n", res.InterfaceCount())
	fmt.Printf("rounds:               %d\n", res.Rounds())
	fmt.Printf("distances measured:   %d, predicted: %d\n", res.DistancesMeasured(), res.DistancesPredicted())
	fmt.Printf("mismatched responses: %d (in-flight destination modification)\n", res.MismatchedResponses())

	st := sim.Stats()
	resil := metrics.Resilience{
		ProbesLost:          st.ProbesLost,
		RepliesLost:         st.RepliesLost,
		Duplicates:          st.Duplicates,
		Reordered:           st.Reordered,
		Retransmitted:       res.RetransmittedProbes(),
		DuplicatesDiscarded: res.DuplicateResponses(),
		ReadErrors:          res.ReadErrors(),
		SendErrors:          res.SendErrors(),
		SendRetries:         res.SendRetries(),
	}
	if resil.Any() {
		if err := resil.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if n := res.CheckpointErrors(); n > 0 {
		fmt.Fprintf(os.Stderr, "flashroute: %d checkpoint(s) failed to persist\n", n)
	}

	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("routes written to %s\n", *output)
	}
	if *binOutput != "" {
		f, err := os.Create(*binOutput)
		if err != nil {
			fatal(err)
		}
		n, err := res.WriteBinary(f)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%d binary records written to %s\n", n, *binOutput)
	}
}

// scanCluster runs the distributed coordinator: K in-process worker
// loops over distinct vantage ingresses, one shared stop set, merged
// conflict-aware results (DESIGN.md §13).
func scanCluster(ctx context.Context, sim *flashroute.Simulation, cfg flashroute.Config, opt flashroute.ClusterOptions, output string) {
	cfg.CollectRoutes = cfg.CollectRoutes || output != ""
	res, err := sim.ScanClusterContext(ctx, cfg, opt)
	if err != nil {
		fatal(err)
	}
	if res.Interrupted() {
		fmt.Println("scan interrupted; partial merged result follows")
	}
	fmt.Printf("scan time:            %v\n", res.ScanTime())
	fmt.Printf("probes sent:          %d (preprobing: %d)\n", res.Probes(), res.PreprobeProbes())
	fmt.Printf("interfaces found:     %d\n", res.InterfaceCount())
	fmt.Printf("worker loops:         %d (migrations: %d)\n", len(res.Workers()), res.Migrations())
	for _, f := range res.Failures() {
		fmt.Printf("  worker failure: shard %d @ vantage %d (%s)\n", f.Shard, f.Vantage, f.Cause)
	}
	if ab := res.Abandoned(); len(ab) > 0 {
		fmt.Printf("  abandoned shards: %v (migration budget exhausted; partial merge)\n", ab)
	}
	if n := res.StopSetDegraded(); n > 0 {
		fmt.Printf("  stop-set degradation episodes: %d (local-only Doubletree fallback)\n", n)
	}
	fmt.Printf("stop-set exchange:    %d published, %d adopted\n", res.StopPublished(), res.StopReceived())
	fmt.Printf("multi-path conflicts: %d (kept as multi-path observations)\n", len(res.MultiPaths()))
	for _, w := range res.Workers() {
		resumed := ""
		if w.Resumed {
			resumed = " (resumed shard)"
		}
		fmt.Printf("  worker shard %d @ vantage %d: %d blocks, %d probes, %d remote stops%s\n",
			w.Shard, w.Vantage, w.Blocks, w.ProbesSent, w.StopReceived, resumed)
	}
	if output != "" {
		f, err := os.Create(output)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("merged routes written to %s\n", output)
	}
}

type scan6Opts struct {
	prefixes, perPrefix int
	seed                int64
	realTime            bool
	impair              flashroute.Impairments
	split, gap          uint8
	pps                 int
	senders             int
	receivers           int
	batch               int
	preprobe            string
	preprobeRetries     int
	forwardRetries      int
	forwardTimeout      time.Duration
	noRedund            bool
	checkpoint          string
	ckptEvery           int
	resumeFrom          string
	sendRetries         int
}

// scan6 is the -6 path: the same engine knobs (senders, impairments,
// retries, checkpointing) applied to a FlashRoute6 scan over the sparse
// IPv6 simulation.
func scan6(ctx context.Context, o scan6Opts) {
	switch o.preprobe {
	case "random":
		// The IPv6 preprobe has no target choice to make — candidate
		// lists are explicit addresses.
	case "off":
	default:
		fatal(fmt.Errorf("-preprobe %q is not available with -6 (use random or off)", o.preprobe))
	}
	sim := flashroute.NewSimulation6(flashroute.Sim6Config{
		Prefixes:         o.prefixes,
		TargetsPerPrefix: o.perPrefix,
		Seed:             o.seed,
		RealTime:         o.realTime,
		Impair:           o.impair,
	})
	targets := sim.Targets()
	fmt.Printf("simulated IPv6 Internet: %d targets across %d /48s, seed %d\n",
		len(targets), o.prefixes, o.seed)

	cfg := flashroute.Config6{
		SplitTTL:                o.split,
		GapLimit:                o.gap,
		PPS:                     o.pps,
		Senders:                 o.senders,
		Receivers:               o.receivers,
		Batch:                   o.batch,
		PreprobeOff:             o.preprobe == "off",
		PreprobeRetries:         o.preprobeRetries,
		ForwardRetries:          o.forwardRetries,
		ForwardTimeout:          o.forwardTimeout,
		NoRedundancyElimination: o.noRedund,
		SendRetries:             o.sendRetries,
	}
	if o.checkpoint != "" {
		cfg.CheckpointSink = checkpointSink(o.checkpoint)
		cfg.CheckpointEvery = o.ckptEvery
	}
	var res *flashroute.Result6
	var err error
	if o.resumeFrom != "" {
		snap, rerr := os.ReadFile(o.resumeFrom)
		if rerr != nil {
			fatal(rerr)
		}
		fmt.Printf("resuming from checkpoint %s\n", o.resumeFrom)
		res, err = sim.ResumeScanContext(ctx, cfg, snap)
		if errors.Is(err, flashroute.ErrCheckpointComplete) {
			fmt.Printf("checkpoint %s is from a completed scan; nothing to resume\n", o.resumeFrom)
			return
		}
	} else {
		res, err = sim.ScanContext(ctx, cfg)
	}
	if err != nil {
		fatal(err)
	}
	reportInterrupt(res.Interrupted(), o.checkpoint)
	fmt.Printf("scan time:            %v\n", res.ScanTime())
	fmt.Printf("probes sent:          %d (%.2f per target)\n",
		res.Probes(), float64(res.Probes())/float64(len(targets)))
	fmt.Printf("interfaces found:     %d\n", res.InterfaceCount())
	fmt.Printf("targets reached:      %d\n", res.ReachedCount())
	fmt.Printf("distances measured:   %d, same-prefix predicted: %d\n",
		res.DistancesMeasured(), res.DistancesPredicted())

	st := sim.Stats()
	resil := metrics.Resilience{
		ProbesLost:          st.ProbesLost,
		RepliesLost:         st.RepliesLost,
		Duplicates:          st.Duplicates,
		Reordered:           st.Reordered,
		Retransmitted:       res.RetransmittedProbes(),
		DuplicatesDiscarded: res.DuplicateResponses(),
		ReadErrors:          res.ReadErrors(),
		SendErrors:          res.SendErrors(),
		SendRetries:         res.SendRetries(),
	}
	if resil.Any() {
		if err := resil.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if n := res.CheckpointErrors(); n > 0 {
		fmt.Fprintf(os.Stderr, "flashroute: %d checkpoint(s) failed to persist\n", n)
	}
}

// checkpointSink returns a CheckpointSink that persists snapshots
// atomically: each one is written to a temp file and renamed over the
// target, so a crash mid-write never leaves a truncated checkpoint.
func checkpointSink(path string) func([]byte) error {
	return func(snapshot []byte) error {
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, snapshot, 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}
}

// reportInterrupt tells the user a cancelled scan's results are partial
// and where the final checkpoint went.
func reportInterrupt(interrupted bool, checkpoint string) {
	if !interrupted {
		return
	}
	if checkpoint != "" {
		fmt.Printf("scan interrupted; partial results below, final checkpoint written to %s\n", checkpoint)
	} else {
		fmt.Println("scan interrupted; partial results below (use -checkpoint to make runs resumable)")
	}
}

// writeMemProfile snapshots the heap after the scan (post-GC, so live
// memory rather than garbage dominates the profile).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// printFootprint is the -footprint planning mode: the §3.4/§5.4 memory
// math for the configured universe, priced before committing to a scan.
func printFootprint(blocks int) {
	fp := flashroute.EstimateFootprint(blocks)
	fmt.Printf("universe:          %d /24 blocks\n", fp.Blocks)
	fmt.Printf("control state:\n")
	fmt.Printf("  DCB array:       %s\n", fmtBytes(fp.DCBBytes))
	fmt.Printf("  per-DCB locks:   %s\n", fmtBytes(fp.LockBytes))
	fmt.Printf("  side arrays:     %s\n", fmtBytes(fp.SideBytes))
	fmt.Printf("result store:      %s  (routes collected; every block responding)\n",
		fmtBytes(fp.ResultBytes))
	fmt.Printf("total:             %s\n", fmtBytes(fp.Total()))
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flashroute:", err)
	os.Exit(1)
}
