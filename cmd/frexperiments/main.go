// Command frexperiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the index) on a scaled universe, and
// writes the results in the EXPERIMENTS.md format.
//
//	frexperiments -exp all -blocks 262144 -out results.txt
//	frexperiments -exp T3,F8 -blocks 65536
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/flashroute/flashroute/internal/experiments"
)

type runner func(*experiments.Scenario, io.Writer) error

var all = []struct {
	id   string
	desc string
	run  runner
}{
	{"F3", "Figure 3: one-probe hop-distance measurement accuracy", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.Figure3HopDistanceAccuracy(s)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"F4", "Figure 4: proximity-span prediction accuracy", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.Figure4PredictionAccuracy(s)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"T1", "Table 1: redundancy elimination", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.Table1RedundancyElimination(s)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"F6", "Figure 6: gap limit sweep", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.Figure6GapLimit(s, nil)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"T2", "Table 2: preprobing modes", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.Table2Preprobing(s)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"T3", "Table 3: tool comparison", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.Table3ToolComparison(s)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"F7", "Figure 7: targets probed per TTL", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.Figure7ProbedTTLDistribution(s)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"T4", "Table 4: interface overprobing", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.Table4Overprobing(s)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"T5", "Table 5: non-throttled scan speed (real clock)", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.Table5MaxRate(s)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"F8", "Figure 8 / §5.1 D1: census hitlist bias", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.Figure8HitlistBias(s)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"D2", "§5.2: discovery-optimized mode", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.Discovery5_2(s, 3)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"D3", "§5.3: in-flight destination modification", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.Rewrite5_3(s)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"S1", "§5.4: proximity-span exploration", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.SpanSweep5_4(s, nil)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"L1", "Loss sweep: discovery vs packet loss, retries on/off", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.LossSweep(s, nil)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"C1", "Crash/resume: kill at 25/50/75%, resume, extra-probe cost", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.CrashResume(s, nil)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"C2", "Cluster: probe savings of the shared global stop set at K workers", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.ClusterSavings(s, nil)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"F1", "Failure recovery: vantage dies at 25/50/75%, shard auto-migrates", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.FailureRecovery(s, nil)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"B1", "Batch sweep: scan rate vs packets per transport call", func(s *experiments.Scenario, w io.Writer) error {
		r, err := experiments.BatchSweep(s, nil)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
	{"X1", "§5.4: FlashRoute6 vs Yarrp6 (IPv6 extension)", func(s *experiments.Scenario, w io.Writer) error {
		// IPv6 candidate lists scale differently from the /24 lattice;
		// derive a comparable target count from the scenario size.
		prefixes := s.Blocks / 16
		if prefixes < 256 {
			prefixes = 256
		}
		if prefixes > 8192 {
			prefixes = 8192
		}
		r, err := experiments.IPv6Comparison(prefixes, 16, s.Seed)
		if err != nil {
			return err
		}
		return r.WriteText(w)
	}},
}

func main() {
	var (
		expList = flag.String("exp", "all", "comma-separated experiment ids (F3,F4,T1,F6,T2,T3,F7,T4,T5,F8,D2,D3,S1,L1,C1,C2,F1,B1,X1) or 'all'; D1 is part of F8")
		blocks  = flag.Int("blocks", 262144, "universe size in /24 blocks")
		seed    = flag.Int64("seed", 42, "simulation seed")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	want := map[string]bool{}
	if *expList != "all" {
		for _, id := range strings.Split(*expList, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if id == "D1" {
				id = "F8"
			}
			want[id] = true
		}
	}

	fmt.Fprintf(w, "flashroute-go experiment run: blocks=%d seed=%d scaled-pps=%d (paper: %d blocks at %d pps)\n\n",
		*blocks, *seed, experiments.NewScenario(*blocks, *seed).ScaledPPS(experiments.PaperPPS),
		experiments.PaperBlocks, experiments.PaperPPS)

	sc := experiments.NewScenario(*blocks, *seed)
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Fprintf(w, "== %s: %s ==\n", e.id, e.desc)
		start := time.Now()
		if err := e.run(sc, w); err != nil {
			fatal(fmt.Errorf("%s: %w", e.id, err))
		}
		fmt.Fprintf(w, "(completed in %v wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "frexperiments:", err)
	os.Exit(1)
}
