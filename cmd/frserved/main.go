// Command frserved is the FlashRoute scan service: a long-running daemon
// with an HTTP/JSON API to submit scan jobs, poll live progress, stream
// NDJSON results, cancel, and list jobs. Jobs run against the bundled
// deterministic Internet simulation; a bounded queue gates admission, a
// per-tenant budget scheduler divides the global probing rate across
// concurrent jobs, and checkpoint-backed persistence makes every
// in-flight job survive a daemon restart (see DESIGN.md §12).
//
// Example:
//
//	frserved -addr :8080 -state /var/lib/frserved
//	curl -s localhost:8080/v1/jobs -d '{"blocks":4096,"seed":7}'
//	curl -s localhost:8080/v1/jobs/job-000000
//	curl -s localhost:8080/v1/jobs/job-000000/results
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/flashroute/flashroute/internal/served"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		state      = flag.String("state", "frserved-state", "state directory (job table, checkpoints, results)")
		globalPPS  = flag.Int("global-pps", 100_000, "global probing-rate ceiling divided across running jobs")
		maxActive  = flag.Int("max-active", 4, "maximum concurrently running jobs")
		maxQueued  = flag.Int("max-queued", 64, "maximum queued jobs before submissions get 429")
		ckptEvery  = flag.Int("checkpoint-every", 10_000, "default per-job checkpoint cadence in probes")
		wdTimeout  = flag.Duration("watchdog-timeout", 0, "cluster jobs: per-worker progress watchdog (0 disables self-healing)")
		maxMigrate = flag.Int("max-migrations", 0, "cluster jobs: per-shard migration budget (0 = default, negative disables)")
		drainGrace = flag.Duration("shutdown-grace", 10*time.Second, "bound on draining in-flight HTTP requests at shutdown")
	)
	flag.Parse()

	srv, err := served.New(served.Config{
		StateDir:        *state,
		GlobalPPS:       *globalPPS,
		MaxActive:       *maxActive,
		MaxQueued:       *maxQueued,
		CheckpointEvery: *ckptEvery,
		WatchdogTimeout: *wdTimeout,
		MaxMigrations:   *maxMigrate,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "frserved:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "frserved:", err)
		os.Exit(1)
	}
	// Header/read/idle timeouts bound how long a slow or stuck client can
	// pin a connection (and its goroutine); results streaming can be
	// large, so writes stay unbounded.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "frserved: shutting down (jobs stay resumable)")
		// Drain in-flight requests, but never past the grace bound — a
		// stuck client must not hold up the job-checkpointing stop below.
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			hs.Close()
		}
	}()

	fmt.Fprintf(os.Stderr, "frserved: listening on %s, state in %s\n", ln.Addr(), *state)
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed && !errors.Is(err, net.ErrClosed) {
		fmt.Fprintln(os.Stderr, "frserved:", err)
	}
	// Graceful stop: running jobs write their final checkpoints and the
	// job table stays resumable by the next start against -state.
	srv.Stop()
}
