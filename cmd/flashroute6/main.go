// Command flashroute6 runs FlashRoute6 — the IPv6 extension of §5.4 —
// over a simulated sparse IPv6 Internet, optionally comparing against the
// Yarrp6 baseline.
//
//	flashroute6 -prefixes 2048 -per-prefix 16
//	flashroute6 -prefixes 2048 -compare-yarrp6
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"github.com/flashroute/flashroute"
	"github.com/flashroute/flashroute/internal/experiments"
	"github.com/flashroute/flashroute/internal/metrics"
)

func main() {
	var (
		prefixes  = flag.Int("prefixes", 2048, "allocated /48 prefixes in the simulated IPv6 Internet")
		perPrefix = flag.Int("per-prefix", 16, "candidate targets per prefix")
		seed      = flag.Int64("seed", 1, "simulation seed")
		split     = flag.Int("split", 16, "default split hop limit")
		gap       = flag.Int("gap", 5, "forward-probing gap limit")
		pps       = flag.Int("pps", 0, "probing rate (default: scaled to list size)")
		senders   = flag.Int("senders", 1, "number of sending goroutines (1 = deterministic mode)")
		receivers = flag.Int("receivers", 1, "number of reply-processing workers (1 = inline receiver)")
		batch     = flag.Int("batch", 0, "packets per transport call on the send and receive paths (0 or 1 = classic one-packet-per-call)")
		compare   = flag.Bool("compare-yarrp6", false, "also run the Yarrp6 baseline and compare")

		loss          = flag.Float64("loss", 0, "independent packet loss probability (0..1)")
		dup           = flag.Float64("dup", 0, "packet duplication probability (0..1)")
		reorder       = flag.Float64("reorder", 0, "response reordering probability (needs -reorder-window)")
		reorderWindow = flag.Duration("reorder-window", 0, "reordering delay window (e.g. 30ms)")

		preprobeRetries = flag.Int("preprobe-retries", 0, "extra preprobe passes over still-unmeasured targets")
		forwardRetries  = flag.Int("forward-retries", 0, "per-target forward-probing retries after silence")

		checkpoint = flag.String("checkpoint", "", "write crash-safe checkpoints to this file (atomic tmp+rename); SIGINT/SIGTERM also writes a final one")
		ckptEvery  = flag.Int("checkpoint-every", 100000, "with -checkpoint: snapshot cadence in probes sent")
		resumeFrom = flag.String("resume", "", "resume a previous scan from this checkpoint file (must use the same seed and topology flags)")
		faultsSpec = flag.String("faults", "", "deterministic transport fault schedule, e.g. write:2s+500ms,stall:3s+1s,flap:4s+200ms")
		sendRetry  = flag.Int("send-retries", 0, "retry budget for transient send failures (capped exponential backoff)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the scan to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile after the scan to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memProfile)

	if *compare {
		r, err := experiments.IPv6Comparison(*prefixes, *perPrefix, *seed)
		if err != nil {
			fatal(err)
		}
		if err := r.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	impair := flashroute.Impairments{
		LossProb:      *loss,
		DupProb:       *dup,
		ReorderProb:   *reorder,
		ReorderWindow: *reorderWindow,
	}
	if *faultsSpec != "" {
		faults, err := flashroute.ParseFaultSpec(*faultsSpec)
		if err != nil {
			fatal(err)
		}
		impair.Faults = faults
	}

	// SIGINT/SIGTERM trigger graceful shutdown: stop sending, drain
	// in-flight replies, emit the partial result and a final checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sim := flashroute.NewSimulation6(flashroute.Sim6Config{
		Prefixes: *prefixes, TargetsPerPrefix: *perPrefix, Seed: *seed,
		Impair: impair,
	})
	targets := sim.Targets()
	rate := *pps
	if rate == 0 {
		rate = len(targets) / 8
		if rate < 200 {
			rate = 200
		}
	}
	fmt.Printf("IPv6 candidate list: %d targets across %d /48s (rate %d pps)\n",
		len(targets), *prefixes, rate)

	cfg := flashroute.Config6{
		SplitTTL:        uint8(*split),
		GapLimit:        uint8(*gap),
		PPS:             rate,
		Senders:         *senders,
		Receivers:       *receivers,
		Batch:           *batch,
		PreprobeRetries: *preprobeRetries,
		ForwardRetries:  *forwardRetries,
		SendRetries:     *sendRetry,
	}
	if *checkpoint != "" {
		cfg.CheckpointSink = checkpointSink(*checkpoint)
		cfg.CheckpointEvery = *ckptEvery
	}
	var res *flashroute.Result6
	var err error
	if *resumeFrom != "" {
		snap, rerr := os.ReadFile(*resumeFrom)
		if rerr != nil {
			fatal(rerr)
		}
		fmt.Printf("resuming from checkpoint %s\n", *resumeFrom)
		res, err = sim.ResumeScanContext(ctx, cfg, snap)
		if errors.Is(err, flashroute.ErrCheckpointComplete) {
			fmt.Printf("checkpoint %s is from a completed scan; nothing to resume\n", *resumeFrom)
			return
		}
	} else {
		res, err = sim.ScanContext(ctx, cfg)
	}
	if err != nil {
		fatal(err)
	}
	if res.Interrupted() {
		if *checkpoint != "" {
			fmt.Printf("scan interrupted; partial results below, final checkpoint written to %s\n", *checkpoint)
		} else {
			fmt.Println("scan interrupted; partial results below (use -checkpoint to make runs resumable)")
		}
	}
	fmt.Printf("scan time:            %v\n", res.ScanTime())
	fmt.Printf("probes sent:          %d (%.2f per target)\n",
		res.Probes(), float64(res.Probes())/float64(len(targets)))
	fmt.Printf("interfaces found:     %d\n", res.InterfaceCount())
	fmt.Printf("targets reached:      %d\n", res.ReachedCount())
	fmt.Printf("distances measured:   %d, same-prefix predicted: %d\n",
		res.DistancesMeasured(), res.DistancesPredicted())

	st := sim.Stats()
	resil := metrics.Resilience{
		ProbesLost:          st.ProbesLost,
		RepliesLost:         st.RepliesLost,
		Duplicates:          st.Duplicates,
		Reordered:           st.Reordered,
		Retransmitted:       res.RetransmittedProbes(),
		DuplicatesDiscarded: res.DuplicateResponses(),
		ReadErrors:          res.ReadErrors(),
		SendErrors:          res.SendErrors(),
		SendRetries:         res.SendRetries(),
	}
	if resil.Any() {
		if err := resil.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if n := res.CheckpointErrors(); n > 0 {
		fmt.Fprintf(os.Stderr, "flashroute6: %d checkpoint(s) failed to persist\n", n)
	}
}

// checkpointSink returns a CheckpointSink that persists snapshots
// atomically: each one is written to a temp file and renamed over the
// target, so a crash mid-write never leaves a truncated checkpoint.
func checkpointSink(path string) func([]byte) error {
	return func(snapshot []byte) error {
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, snapshot, 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}
}

// writeMemProfile snapshots the heap after the scan (post-GC, so live
// memory rather than garbage dominates the profile).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flashroute6:", err)
	os.Exit(1)
}
