package flashroute

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseFaultSpec parses a comma-separated transport-fault schedule of the
// form "kind[@vantage]:start+duration", e.g.
//
//	write:2s+500ms,stall:3s+1s,flap:4s+200ms,flap@1:5s+2s
//
// Kinds: "write" (transient WritePacket errors), "stall" (deliveries
// delayed to the window's end), "flap" (writes fail and deliveries drop).
// Start is relative to the simulation epoch. "kind@N" scopes the window
// to connections at vantage N (a single cluster worker's link); without
// "@N" the window hits every connection. Used by the CLIs' -faults flag;
// the result goes into Impairments.Faults.
func ParseFaultSpec(spec string) ([]FaultWindow, error) {
	var out []FaultWindow
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("flashroute: fault %q: want kind[@vantage]:start+duration", part)
		}
		var scoped bool
		var vantage int
		if ks, vs, hasV := strings.Cut(kindStr, "@"); hasV {
			v, err := strconv.Atoi(vs)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("flashroute: fault %q: bad vantage %q", part, vs)
			}
			kindStr, scoped, vantage = ks, true, v
		}
		var kind FaultKind
		switch kindStr {
		case "write":
			kind = FaultWriteError
		case "stall":
			kind = FaultReadStall
		case "flap":
			kind = FaultFlap
		default:
			return nil, fmt.Errorf("flashroute: fault %q: unknown kind %q (want write, stall or flap)", part, kindStr)
		}
		startStr, durStr, ok := strings.Cut(rest, "+")
		if !ok {
			return nil, fmt.Errorf("flashroute: fault %q: want kind[@vantage]:start+duration", part)
		}
		start, err := time.ParseDuration(startStr)
		if err != nil {
			return nil, fmt.Errorf("flashroute: fault %q: bad start: %v", part, err)
		}
		dur, err := time.ParseDuration(durStr)
		if err != nil {
			return nil, fmt.Errorf("flashroute: fault %q: bad duration: %v", part, err)
		}
		if start < 0 || dur <= 0 {
			return nil, fmt.Errorf("flashroute: fault %q: start must be >= 0 and duration > 0", part)
		}
		out = append(out, FaultWindow{Start: start, Duration: dur, Kind: kind,
			Scoped: scoped, Vantage: vantage})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("flashroute: empty fault spec %q", spec)
	}
	return out, nil
}
