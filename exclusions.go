package flashroute

import (
	"io"

	"github.com/flashroute/flashroute/internal/exclude"
)

// ExclusionList is a set of address ranges a scan must never probe — the
// operational opt-out mechanism of the paper's ethics appendix, plus the
// private/multicast/reserved space FlashRoute removes at initialization
// (§3.4).
type ExclusionList struct {
	inner *exclude.List
}

// ReservedExclusions returns the always-excluded space: private,
// loopback, link-local, CGN, multicast, test networks and class E.
func ReservedExclusions() *ExclusionList {
	return &ExclusionList{inner: exclude.Reserved()}
}

// ReadExclusions parses an exclusion file: one CIDR or bare address per
// line, '#' comments allowed.
func ReadExclusions(r io.Reader) (*ExclusionList, error) {
	l, err := exclude.Read(r)
	if err != nil {
		return nil, err
	}
	return &ExclusionList{inner: l}, nil
}

// Contains reports whether addr is excluded.
func (e *ExclusionList) Contains(addr uint32) bool { return e.inner.Contains(addr) }

// Merge adds other's ranges into e.
func (e *ExclusionList) Merge(other *ExclusionList) { e.inner.Merge(other.inner) }

// SkipFor adapts an exclusion list to Config.Skip for this simulation's
// universe (whole /24 blocks are excluded, as in the paper §3.4).
func (s *Simulation) SkipFor(e *ExclusionList) func(block int) bool {
	return e.inner.SkipFunc(s.BlockAddr)
}
