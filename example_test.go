package flashroute_test

import (
	"fmt"

	"github.com/flashroute/flashroute"
)

// Example runs the paper's recommended FlashRoute-16 configuration over a
// small reproducible Internet and prints scan economics.
func Example() {
	sim := flashroute.NewSimulation(flashroute.SimConfig{Blocks: 1024, Seed: 7})
	cfg := flashroute.DefaultConfig()
	cfg.PPS = 1000
	res, err := sim.Scan(cfg)
	if err != nil {
		fmt.Println("scan failed:", err)
		return
	}
	fmt.Println("completed:", res.Probes() > 0 && res.InterfaceCount() > 0)
	fmt.Println("probes per block under 16:", float64(res.Probes())/1024 < 16)
	// Output:
	// completed: true
	// probes per block under 16: true
}

// ExampleSimulation_RunYarrp compares FlashRoute against the Yarrp-32
// baseline on identical Internets: FlashRoute completes with a fraction
// of the probes.
func ExampleSimulation_RunYarrp() {
	frSim := flashroute.NewSimulation(flashroute.SimConfig{Blocks: 1024, Seed: 3})
	fr, err := frSim.Scan(flashroute.Config{PPS: 1000})
	if err != nil {
		fmt.Println(err)
		return
	}
	ySim := flashroute.NewSimulation(flashroute.SimConfig{Blocks: 1024, Seed: 3})
	y, err := ySim.RunYarrp(flashroute.YarrpConfig{PPS: 1000})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("yarrp probes are exactly blocks x 32:", y.Probes() == 1024*32)
	fmt.Println("flashroute uses less than half:", fr.Probes()*2 < y.Probes())
	// Output:
	// yarrp probes are exactly blocks x 32: true
	// flashroute uses less than half: true
}

// ExampleConfig_discoveryOptimized shows §5.2's discovery-optimized mode
// with the §5.4 refinements enabled.
func ExampleConfig_discoveryOptimized() {
	sim := flashroute.NewSimulation(flashroute.SimConfig{Blocks: 2048, Seed: 11})
	cfg := flashroute.DefaultConfig()
	cfg.PPS = 2000
	cfg.SplitTTL = 32
	cfg.ExtraScans = 3
	cfg.AdaptiveExtraScans = true
	cfg.VaryExtraScanTargets = true
	res, err := sim.Scan(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("extra scans ran:", res.Probes() > 0)
	// Output:
	// extra scans ran: true
}
