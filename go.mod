module github.com/flashroute/flashroute

go 1.23
