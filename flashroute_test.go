package flashroute

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/flashroute/flashroute/internal/output"
)

func TestPublicQuickstart(t *testing.T) {
	sim := NewSimulation(SimConfig{Blocks: 1024, Seed: 7})
	res, err := sim.Scan(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes() == 0 || res.InterfaceCount() == 0 {
		t.Fatalf("empty scan: %d probes, %d interfaces", res.Probes(), res.InterfaceCount())
	}
	if res.ScanTime() <= 0 || res.Rounds() == 0 {
		t.Fatal("missing timing")
	}
	stats := sim.Stats()
	if stats.ProbesSeen != res.Probes() {
		t.Fatalf("network saw %d probes, scanner sent %d", stats.ProbesSeen, res.Probes())
	}
}

func TestPublicRoutesAndDistances(t *testing.T) {
	sim := NewSimulation(SimConfig{Blocks: 2048, Seed: 9})
	cfg := DefaultConfig()
	cfg.CollectRoutes = true
	res, err := sim.Scan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRoutes() == 0 {
		t.Fatal("no routes")
	}
	found := false
	res.ForEachRoute(func(r *Route) {
		if r.Reached && len(r.Hops) > 1 {
			found = true
		}
	})
	if !found {
		t.Fatal("no reached multi-hop route")
	}
	if res.DistancesMeasured() == 0 || res.DistancesPredicted() == 0 {
		t.Fatal("preprobing produced nothing")
	}
	// Measured distances agree with simulator ground truth most of the
	// time (route dynamics allow small drift).
	ok, total := 0, 0
	for b := 0; b < sim.Blocks(); b++ {
		d, pred := res.MeasuredDistance(b)
		if d == 0 || pred {
			continue
		}
		truth := sim.TrueDistance(sim.RandomTargets()(b))
		if truth == 0 {
			continue
		}
		total++
		diff := int(d) - int(truth)
		if diff >= -1 && diff <= 1 {
			ok++
		}
	}
	if total == 0 || ok*10 < total*8 {
		t.Fatalf("measured distances poor: %d/%d within one hop", ok, total)
	}
}

func TestPublicCSVAndHitlist(t *testing.T) {
	sim := NewSimulation(SimConfig{Blocks: 256, Seed: 3})
	cfg := DefaultConfig()
	cfg.CollectRoutes = true
	res, err := sim.Scan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "destination,ttl,hop") {
		t.Fatalf("csv header: %q", buf.String()[:40])
	}
	var hl bytes.Buffer
	if err := sim.WriteHitlist(&hl); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(hl.String(), "\n"); lines != 256 {
		t.Fatalf("hitlist lines=%d", lines)
	}
}

func TestPublicBaselines(t *testing.T) {
	sim := NewSimulation(SimConfig{Blocks: 512, Seed: 5})
	yr, err := sim.RunYarrp(YarrpConfig{PPS: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if yr.Probes() != 512*32 {
		t.Fatalf("yarrp probes=%d", yr.Probes())
	}
	sim2 := NewSimulation(SimConfig{Blocks: 512, Seed: 5})
	sr, err := sim2.RunScamper(ScamperConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Probes() == 0 || sr.InterfaceCount() == 0 {
		t.Fatal("scamper scan empty")
	}
}

func TestPublicCIDRUniverse(t *testing.T) {
	sim := NewSimulation(SimConfig{CIDRs: []string{"192.0.0.0/16"}, Seed: 1})
	if sim.Blocks() != 256 {
		t.Fatalf("blocks=%d", sim.Blocks())
	}
	addr := sim.BlockAddr(0)
	if FormatAddr(addr) != "192.0.0.0" {
		t.Fatalf("block 0 at %s", FormatAddr(addr))
	}
	if b, ok := sim.BlockOf(addr | 42); !ok || b != 0 {
		t.Fatal("BlockOf failed")
	}
}

func TestPublicDiscoveryMode(t *testing.T) {
	sim := NewSimulation(SimConfig{Blocks: 2048, Seed: 11})
	cfg := DefaultConfig()
	cfg.SplitTTL = 32
	cfg.ExtraScans = 2
	res, err := sim.Scan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := NewSimulation(SimConfig{Blocks: 2048, Seed: 11})
	bcfg := DefaultConfig()
	bcfg.SplitTTL = 32
	bres, err := base.Scan(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.InterfaceCount() <= bres.InterfaceCount() {
		t.Fatalf("discovery mode found nothing extra: %d vs %d",
			res.InterfaceCount(), bres.InterfaceCount())
	}
}

// TestVaryExtraScanTargets: §5.4's varying-destination extra scans must
// discover more than port-variation alone (address-dependent paths and
// fresh per-flow balancer samples).
func TestVaryExtraScanTargets(t *testing.T) {
	run := func(vary bool) int {
		sim := NewSimulation(SimConfig{Blocks: 8192, Seed: 21})
		cfg := DefaultConfig()
		cfg.PPS = 50_000
		cfg.SplitTTL = 32
		cfg.ExtraScans = 3
		cfg.VaryExtraScanTargets = vary
		res, err := sim.Scan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.InterfaceCount()
	}
	fixed := run(false)
	varied := run(true)
	if varied <= fixed {
		t.Fatalf("varying targets should discover more: fixed=%d varied=%d", fixed, varied)
	}
	t.Logf("fixed targets: %d ifaces; varied targets: %d ifaces (+%d)", fixed, varied, varied-fixed)
}

// TestExclusionsRespected: excluded blocks must receive zero probes.
func TestExclusionsRespected(t *testing.T) {
	sim := NewSimulation(SimConfig{Blocks: 512, Seed: 4})
	excl, err := ReadExclusions(strings.NewReader("4.0.0.0/26\n4.0.7.0/24\n"))
	if err != nil {
		t.Fatal(err)
	}
	// /26 does not cover the whole first /24; block exclusion applies to
	// the block containing the base.
	cfg := DefaultConfig()
	cfg.Skip = sim.SkipFor(excl)
	var mu sync.Mutex
	probed := map[int]bool{}
	cfg.Observer = func(dst uint32, ttl uint8, at time.Duration) {
		if b, ok := sim.BlockOf(dst); ok {
			mu.Lock()
			probed[b] = true
			mu.Unlock()
		}
	}
	if _, err := sim.Scan(cfg); err != nil {
		t.Fatal(err)
	}
	if probed[0] || probed[7] {
		t.Fatal("excluded blocks were probed")
	}
	if !probed[1] || !probed[100] {
		t.Fatal("non-excluded blocks were not probed")
	}
	if !excl.Contains(0x04000010) || excl.Contains(0x04000100) {
		t.Fatal("Contains semantics wrong")
	}
}

func TestBinaryOutputRoundTrip(t *testing.T) {
	sim := NewSimulation(SimConfig{Blocks: 256, Seed: 6})
	cfg := DefaultConfig()
	cfg.CollectRoutes = true
	res, err := sim.Scan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := res.WriteBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no records written")
	}
	r, err := output.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := output.Summarize(r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Records != n {
		t.Fatalf("records %d != written %d", s.Records, n)
	}
	if s.Interfaces != res.InterfaceCount() {
		t.Fatalf("summary interfaces %d != result %d", s.Interfaces, res.InterfaceCount())
	}
}

// TestPingCensusDrivesPreprobing: the packet-built census must be usable
// as preprobe targets end to end.
func TestPingCensusDrivesPreprobing(t *testing.T) {
	sim := NewSimulation(SimConfig{Blocks: 2048, Seed: 13})
	responsive, err := sim.PingCensus()
	if err != nil {
		t.Fatal(err)
	}
	if responsive == 0 {
		t.Fatal("census found nothing")
	}
	cfg := DefaultConfig()
	cfg.Preprobe = PreprobeHitlist
	cfg.PreprobeTargets = sim.HitlistTargets()
	res, err := sim.Scan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DistancesMeasured() == 0 {
		t.Fatal("ping-census hitlist produced no measured distances")
	}
	t.Logf("census: %d responsive; scan measured %d distances", responsive, res.DistancesMeasured())
}

func TestAddrHelpers(t *testing.T) {
	a, err := ParseAddr("10.1.2.3")
	if err != nil || FormatAddr(a) != "10.1.2.3" {
		t.Fatalf("%v %v", a, err)
	}
	if _, err := ParseAddr("zap"); err == nil {
		t.Fatal("junk accepted")
	}
}

// TestReadTargets: the §3.4 exterior-target-file option.
func TestReadTargets(t *testing.T) {
	sim := NewSimulation(SimConfig{Blocks: 64, Seed: 8})
	in := "# targets\n4.0.3.99\n4.0.7.1\n9.9.9.9\n"

	// With a fallback: listed blocks overridden, others fall back.
	targets, skip, err := sim.ReadTargets(strings.NewReader(in), sim.RandomTargets())
	if err != nil {
		t.Fatal(err)
	}
	if targets(3) != 0x04000300|99 || targets(7) != 0x04000700|1 {
		t.Fatal("overrides not applied")
	}
	if targets(5) == 0 || skip(5) {
		t.Fatal("fallback should cover unlisted blocks")
	}

	// Without a fallback: unlisted blocks are skipped; the scan probes
	// exactly the listed blocks.
	targets, skip, err = sim.ReadTargets(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !skip(5) || skip(3) || skip(7) {
		t.Fatal("skip semantics wrong")
	}
	cfg := DefaultConfig()
	cfg.Exhaustive = true
	cfg.Targets = targets
	cfg.Skip = skip
	res, err := sim.Scan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes() != 2*32 {
		t.Fatalf("probes=%d want %d (two listed blocks)", res.Probes(), 2*32)
	}

	if _, _, err := sim.ReadTargets(strings.NewReader("junk\n"), nil); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestConfigOverridesRespected(t *testing.T) {
	sim := NewSimulation(SimConfig{Blocks: 256, Seed: 2})
	cfg := DefaultConfig()
	cfg.Exhaustive = true
	res, err := sim.Scan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes() != 256*32 {
		t.Fatalf("exhaustive probes=%d want %d", res.Probes(), 256*32)
	}
	// GapLimitZero must disable forward probing entirely.
	sim2 := NewSimulation(SimConfig{Blocks: 256, Seed: 2})
	cfg2 := DefaultConfig()
	cfg2.GapLimitZero = true
	res2, err := sim2.Scan(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	sim3 := NewSimulation(SimConfig{Blocks: 256, Seed: 2})
	res3, err := sim3.Scan(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Probes() >= res3.Probes() {
		t.Fatalf("gap-0 should probe less: %d vs %d", res2.Probes(), res3.Probes())
	}
}
