package flashroute

import (
	"context"
	"time"

	"github.com/flashroute/flashroute/internal/cluster"
	"github.com/flashroute/flashroute/internal/core"
	"github.com/flashroute/flashroute/internal/core6"
	"github.com/flashroute/flashroute/internal/trace"
)

// ClusterOptions parameterizes a distributed multi-vantage scan (see
// DESIGN.md §13): the destination universe is carved into Workers
// contiguous shards of the probing permutation, each driven by its own
// engine instance probing from its own vantage, all sharing one global
// stop set so one worker's discoveries suppress another's redundant
// backward probing.
type ClusterOptions struct {
	// Workers is the worker/shard/vantage count K. <= 1 means one
	// worker, which is bit-identical to the corresponding plain scan.
	Workers int
	// Independent detaches the workers' stop sets from each other: K
	// genuinely independent scans over the same shards — the baseline
	// the probe-savings experiment (frexperiments -exp C2) compares
	// against.
	Independent bool

	// WatchdogTimeout arms the coordinator's per-worker progress
	// watchdog (DESIGN.md §15): a worker whose probe counter AND reply
	// stream both stall for this long is declared failed and its shard
	// is migrated from its final checkpoint. Zero disables the watchdog
	// entirely (the default — with it disabled and no faults injected,
	// every self-healing path is inert and results are bit-identical to
	// a supervisor-free scan). When armed, the reported ScanTime may
	// include up to one trailing watchdog tick on the virtual clock.
	WatchdogTimeout time.Duration

	// MaxMigrations bounds how many times any one shard may be handed
	// off to a surviving peer before the coordinator abandons it
	// (recorded in ClusterResult.Abandoned; the merge stays a valid
	// partial result). 0 means the default budget (3); negative
	// disables migration, so a failed shard is abandoned immediately.
	MaxMigrations int

	// AbortOnSendErrors makes each worker's engine abort (with a final
	// checkpoint, so the shard can migrate) once this many probe writes
	// have failed in its current run. 0 picks a small default when
	// WatchdogTimeout is set and leaves the engine's prior
	// keep-scanning behavior otherwise; negative disables the abort.
	AbortOnSendErrors int

	// CheckpointSink, when set, receives every worker's periodic
	// engine checkpoint keyed by shard (taken every CheckpointEvery
	// probes). This is how frserved persists per-shard progress so a
	// daemon restart can resume a cluster job via ResumeSnapshots. The
	// sink is called from worker goroutines; it must be safe for
	// concurrent use.
	CheckpointSink func(shard int, snapshot []byte) error
	// CheckpointEvery is the per-worker probe interval between
	// CheckpointSink calls (only meaningful with a sink; <= 0 leaves
	// the engine default).
	CheckpointEvery int
	// ResumeSnapshots maps shard index -> engine checkpoint to resume
	// from (as previously delivered to CheckpointSink). Listed shards
	// restart from their snapshot; absent shards start fresh.
	ResumeSnapshots map[int][]byte

	// HubFaultHook injects publish/drain failures into the shared
	// stop-set hub (ops "publish" and "drain", per worker) to exercise
	// degraded local-only Doubletree mode. Test injection only.
	HubFaultHook func(op string, worker int) error
}

// clusterOpts lowers the public options onto the coordinator's.
func (opt ClusterOptions) lower() cluster.Options {
	return cluster.Options{
		Workers:           opt.Workers,
		Independent:       opt.Independent,
		WatchdogTimeout:   opt.WatchdogTimeout,
		MaxMigrations:     opt.MaxMigrations,
		AbortOnSendErrors: opt.AbortOnSendErrors,
		CheckpointSink:    opt.CheckpointSink,
		CheckpointEvery:   opt.CheckpointEvery,
		ResumeSnapshots:   opt.ResumeSnapshots,
		HubFaultHook:      opt.HubFaultHook,
	}
}

// ClusterWorkerFailure records one worker-loop failure the coordinator
// detected and handled (see ClusterResult.Failures).
type ClusterWorkerFailure = cluster.WorkerFailure

// ClusterFailureCause classifies a worker failure: "kill" (explicit
// KillWorker), "stall" (watchdog), "transport" (engine aborted on send
// errors), "launch" (a migration attempt itself failed to start).
type ClusterFailureCause = cluster.FailureCause

// Failure causes, re-exported for switch statements.
const (
	ClusterCauseKill      = cluster.CauseKill
	ClusterCauseStall     = cluster.CauseStall
	ClusterCauseTransport = cluster.CauseTransport
	ClusterCauseLaunch    = cluster.CauseLaunch
)

// ClusterWorkerStats describes one worker loop of a finished cluster
// scan.
type ClusterWorkerStats = cluster.WorkerStats

// ClusterMultiPath is a multi-path observation surfaced by the IPv4
// merge: two probing contexts saw different interfaces at the same
// (destination, TTL).
type ClusterMultiPath = cluster.MultiPath[uint32]

// ClusterMultiPath6 is ClusterMultiPath for IPv6 scans.
type ClusterMultiPath6 = cluster.MultiPath[Addr6]

// ClusterResult is the merged outcome of an IPv4 cluster scan: the
// conflict-aware union of every worker's traces plus per-worker and
// stop-set-exchange statistics.
type ClusterResult struct {
	inner *cluster.Result[uint32]
}

// Probes returns the total probe count across all workers.
func (r *ClusterResult) Probes() uint64 { return r.inner.ProbesSent }

// PreprobeProbes returns the probes spent preprobing, summed across
// workers.
func (r *ClusterResult) PreprobeProbes() uint64 { return r.inner.PreprobeProbes }

// ScanTime returns the wall (clock) duration of the whole cluster scan.
func (r *ClusterResult) ScanTime() time.Duration { return r.inner.ScanTime }

// InterfaceCount returns the unique interfaces across the merged union.
func (r *ClusterResult) InterfaceCount() int { return r.inner.Store.Interfaces().Len() }

// HasInterface reports whether addr appears in the merged union.
func (r *ClusterResult) HasInterface(addr uint32) bool {
	return r.inner.Store.Interfaces().Has(addr)
}

// ForEachInterface visits every discovered interface address.
func (r *ClusterResult) ForEachInterface(fn func(addr uint32)) {
	r.inner.Store.Interfaces().ForEach(fn)
}

// Route returns the merged route to dst (nil if nothing was observed).
func (r *ClusterResult) Route(dst uint32) *Route {
	rt := r.inner.Store.Route(dst)
	if rt == nil {
		return nil
	}
	out := &Route{Dst: rt.Dst, Reached: rt.Reached, Length: rt.Length}
	for _, h := range rt.Hops {
		out.Hops = append(out.Hops, Hop{TTL: h.TTL, Addr: h.Addr, RTT: h.RTT})
	}
	return out
}

// NumRoutes returns the number of destinations with at least one
// response in the union.
func (r *ClusterResult) NumRoutes() int { return r.inner.Store.NumRoutes() }

// ForEachRoute visits every merged route.
func (r *ClusterResult) ForEachRoute(fn func(*Route)) {
	r.inner.Store.ForEachRoute(func(rt *trace.Route) {
		out := &Route{Dst: rt.Dst, Reached: rt.Reached, Length: rt.Length}
		for _, h := range rt.Hops {
			out.Hops = append(out.Hops, Hop{TTL: h.TTL, Addr: h.Addr, RTT: h.RTT})
		}
		fn(out)
	})
}

// MultiPaths returns the merge's multi-path observations, sorted by
// (destination, TTL).
func (r *ClusterResult) MultiPaths() []ClusterMultiPath { return r.inner.MultiPaths }

// Workers returns per-worker-loop statistics (a migrated shard has one
// entry per attempt).
func (r *ClusterResult) Workers() []ClusterWorkerStats { return r.inner.Workers }

// Migrations returns how many shard handoffs happened mid-scan.
func (r *ClusterResult) Migrations() int { return r.inner.Migrations }

// Failures lists every worker failure the coordinator detected,
// in detection order (empty on an undisturbed scan).
func (r *ClusterResult) Failures() []ClusterWorkerFailure { return r.inner.Failures }

// Abandoned lists shards (sorted) whose migration budget ran out; their
// remaining destinations went unprobed and the merge is a valid partial
// result.
func (r *ClusterResult) Abandoned() []int { return r.inner.Abandoned }

// StopSetDegraded counts degradation episodes: how many times a worker
// lost the shared stop-set hub and fell back to local-only Doubletree
// mode (zero on an undisturbed scan).
func (r *ClusterResult) StopSetDegraded() uint64 { return r.inner.StopSetDegraded }

// StopPublished and StopReceived report the global stop-set exchange:
// entries published to the merge log, and remote entries adopted by
// workers (both zero when ClusterOptions.Independent).
func (r *ClusterResult) StopPublished() uint64 { return r.inner.StopPublished }
func (r *ClusterResult) StopReceived() uint64  { return r.inner.StopReceived }

// Interrupted reports the scan was cancelled; the result is the valid
// partial merge.
func (r *ClusterResult) Interrupted() bool { return r.inner.Interrupted }

// WriteCSV writes the merged routes as CSV.
func (r *ClusterResult) WriteCSV(w interface{ Write([]byte) (int, error) }) error {
	return r.inner.Store.WriteCSV(w)
}

// WriteJSONL writes the merged routes as one JSON object per line.
func (r *ClusterResult) WriteJSONL(w interface{ Write([]byte) (int, error) }) error {
	return r.inner.Store.WriteJSONL(w)
}

// ClusterHandle is a running IPv4 cluster scan (StartClusterScan): poll
// Probes, retarget the rate with SetRate, Cancel for a graceful partial
// merge, KillWorker to exercise shard migration, Wait for completion.
type ClusterHandle struct {
	run *cluster.Run[uint32]
}

// Probes returns the live probe count summed across worker loops.
func (h *ClusterHandle) Probes() uint64 { return h.run.Probes() }

// SetRate retargets the aggregate probing rate (split across workers).
func (h *ClusterHandle) SetRate(pps int) { h.run.SetRate(pps) }

// Cancel requests graceful cancellation of every worker.
func (h *ClusterHandle) Cancel() { h.run.Cancel() }

// KillWorker cancels the loop probing the given shard and migrates the
// shard's remaining work to a peer vantage via its final checkpoint.
// Reports whether a live loop was killed.
func (h *ClusterHandle) KillWorker(shard int) bool { return h.run.KillWorker(shard) }

// Migrations returns the live count of completed shard handoffs.
func (h *ClusterHandle) Migrations() int { return h.run.Migrations() }

// StopSetDegraded returns the live count of stop-set degradation
// episodes across workers.
func (h *ClusterHandle) StopSetDegraded() uint64 { return h.run.StopSetDegraded() }

// Wait blocks until the cluster scan completes.
func (h *ClusterHandle) Wait() (*ClusterResult, error) {
	res, err := h.run.Wait()
	if err != nil {
		return nil, err
	}
	return &ClusterResult{inner: res}, nil
}

// StartClusterScan begins a distributed multi-vantage scan against this
// simulation. Each of the opt.Workers workers probes its contiguous
// shard of the probing permutation from its own vantage (distinct
// first-hop ingress), publishing stop-set discoveries to the shared
// merge log. With opt.Workers <= 1 the scan is bit-identical to
// StartScan over the same Config.
func (s *Simulation) StartClusterScan(ctx context.Context, cfg Config, opt ClusterOptions) (*ClusterHandle, error) {
	s.fill(&cfg)
	receivers := cfg.Receivers
	env := cluster.Env[uint32]{
		Fam:   core.IPv4Family(),
		Base:  cfg.toCore(),
		Clock: s.clock,
		NewConn: func(v int) (core.PacketConn, func() core.PacketReader, error) {
			c := s.net.NewVantageConn(v)
			var nr func() core.PacketReader
			if receivers > 1 {
				nr = func() core.PacketReader { return c.NewReader() }
			}
			return c, nr, nil
		},
	}
	run, err := cluster.Start(ctx, env, opt.lower())
	if err != nil {
		return nil, err
	}
	return &ClusterHandle{run: run}, nil
}

// ScanCluster is StartClusterScan + Wait: the blocking form.
func (s *Simulation) ScanCluster(cfg Config, opt ClusterOptions) (*ClusterResult, error) {
	return s.ScanClusterContext(context.Background(), cfg, opt)
}

// ScanClusterContext is ScanCluster with graceful cancellation.
func (s *Simulation) ScanClusterContext(ctx context.Context, cfg Config, opt ClusterOptions) (*ClusterResult, error) {
	h, err := s.StartClusterScan(ctx, cfg, opt)
	if err != nil {
		return nil, err
	}
	return h.Wait()
}

// ClusterResult6 is the merged outcome of an IPv6 cluster scan.
type ClusterResult6 struct {
	inner *cluster.Result[Addr6]
}

// Probes returns the total probe count across all workers.
func (r *ClusterResult6) Probes() uint64 { return r.inner.ProbesSent }

// ScanTime returns the clock duration of the whole cluster scan.
func (r *ClusterResult6) ScanTime() time.Duration { return r.inner.ScanTime }

// InterfaceCount returns the unique interfaces across the merged union.
func (r *ClusterResult6) InterfaceCount() int { return r.inner.Store.Interfaces().Len() }

// HasInterface reports whether a appears in the merged union.
func (r *ClusterResult6) HasInterface(a Addr6) bool { return r.inner.Store.Interfaces().Has(a) }

// ReachedCount returns how many targets answered.
func (r *ClusterResult6) ReachedCount() int {
	n := 0
	r.inner.Store.ForEachRoute(func(rt *trace.RouteOf[Addr6]) {
		if rt.Reached {
			n++
		}
	})
	return n
}

// Route returns the merged route to a target (nil if nothing observed).
func (r *ClusterResult6) Route(a Addr6) *Route6 {
	rt := r.inner.Store.Route(a)
	if rt == nil {
		return nil
	}
	out := &Route6{Dst: rt.Dst, Reached: rt.Reached, Length: rt.Length}
	for _, h := range rt.Hops {
		out.Hops = append(out.Hops, Hop6{TTL: h.TTL, Addr: h.Addr, RTT: h.RTT})
	}
	return out
}

// ForEachRoute visits every merged route.
func (r *ClusterResult6) ForEachRoute(fn func(*Route6)) {
	r.inner.Store.ForEachRoute(func(rt *trace.RouteOf[Addr6]) {
		out := &Route6{Dst: rt.Dst, Reached: rt.Reached, Length: rt.Length}
		for _, h := range rt.Hops {
			out.Hops = append(out.Hops, Hop6{TTL: h.TTL, Addr: h.Addr, RTT: h.RTT})
		}
		fn(out)
	})
}

// MultiPaths returns the merge's multi-path observations.
func (r *ClusterResult6) MultiPaths() []ClusterMultiPath6 { return r.inner.MultiPaths }

// Workers returns per-worker-loop statistics.
func (r *ClusterResult6) Workers() []ClusterWorkerStats { return r.inner.Workers }

// Migrations returns how many shard handoffs happened mid-scan.
func (r *ClusterResult6) Migrations() int { return r.inner.Migrations }

// Failures lists every worker failure the coordinator detected.
func (r *ClusterResult6) Failures() []ClusterWorkerFailure { return r.inner.Failures }

// Abandoned lists shards (sorted) whose migration budget ran out.
func (r *ClusterResult6) Abandoned() []int { return r.inner.Abandoned }

// StopSetDegraded counts stop-set degradation episodes across workers.
func (r *ClusterResult6) StopSetDegraded() uint64 { return r.inner.StopSetDegraded }

// StopPublished and StopReceived report the global stop-set exchange.
func (r *ClusterResult6) StopPublished() uint64 { return r.inner.StopPublished }
func (r *ClusterResult6) StopReceived() uint64  { return r.inner.StopReceived }

// Interrupted reports the scan was cancelled before completion.
func (r *ClusterResult6) Interrupted() bool { return r.inner.Interrupted }

// WriteJSONL writes the merged routes as one JSON object per line.
func (r *ClusterResult6) WriteJSONL(w interface{ Write([]byte) (int, error) }) error {
	return r.inner.Store.WriteJSONL(w)
}

// ClusterHandle6 is a running IPv6 cluster scan (StartClusterScan).
type ClusterHandle6 struct {
	run *cluster.Run[Addr6]
}

// Probes returns the live probe count summed across worker loops.
func (h *ClusterHandle6) Probes() uint64 { return h.run.Probes() }

// SetRate retargets the aggregate probing rate (split across workers).
func (h *ClusterHandle6) SetRate(pps int) { h.run.SetRate(pps) }

// Cancel requests graceful cancellation of every worker.
func (h *ClusterHandle6) Cancel() { h.run.Cancel() }

// KillWorker cancels the loop probing the given shard and migrates its
// remaining work to a peer vantage. Reports whether a loop was killed.
func (h *ClusterHandle6) KillWorker(shard int) bool { return h.run.KillWorker(shard) }

// Migrations returns the live count of completed shard handoffs.
func (h *ClusterHandle6) Migrations() int { return h.run.Migrations() }

// StopSetDegraded returns the live count of stop-set degradation
// episodes across workers.
func (h *ClusterHandle6) StopSetDegraded() uint64 { return h.run.StopSetDegraded() }

// Wait blocks until the cluster scan completes.
func (h *ClusterHandle6) Wait() (*ClusterResult6, error) {
	res, err := h.run.Wait()
	if err != nil {
		return nil, err
	}
	return &ClusterResult6{inner: res}, nil
}

// StartClusterScan begins a distributed multi-vantage IPv6 scan; same
// contract as Simulation.StartClusterScan.
func (s *Simulation6) StartClusterScan(ctx context.Context, cfg Config6, opt ClusterOptions) (*ClusterHandle6, error) {
	ecfg, err := core6.EngineConfig(s.toConfig6(cfg))
	if err != nil {
		return nil, err
	}
	receivers := cfg.Receivers
	env := cluster.Env[Addr6]{
		Fam:   core6.Family(),
		Base:  ecfg,
		Clock: s.clock,
		NewConn: func(v int) (core.PacketConn, func() core.PacketReader, error) {
			c := s.net.NewVantageConn(v)
			var nr func() core.PacketReader
			if receivers > 1 {
				nr = func() core.PacketReader { return c.NewReader() }
			}
			return c, nr, nil
		},
	}
	run, err := cluster.Start(ctx, env, opt.lower())
	if err != nil {
		return nil, err
	}
	return &ClusterHandle6{run: run}, nil
}

// ScanCluster is StartClusterScan + Wait for IPv6.
func (s *Simulation6) ScanCluster(cfg Config6, opt ClusterOptions) (*ClusterResult6, error) {
	return s.ScanClusterContext(context.Background(), cfg, opt)
}

// ScanClusterContext is ScanCluster with graceful cancellation.
func (s *Simulation6) ScanClusterContext(ctx context.Context, cfg Config6, opt ClusterOptions) (*ClusterResult6, error) {
	h, err := s.StartClusterScan(ctx, cfg, opt)
	if err != nil {
		return nil, err
	}
	return h.Wait()
}
